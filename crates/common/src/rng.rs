//! Deterministic random number generation.
//!
//! Every source of randomness in the workspace flows through [`Rng`], a
//! splitmix64/xorshift-based generator seeded explicitly. This keeps figure
//! regeneration reproducible run-to-run and machine-to-machine, which the
//! paper's trial-count comparisons (Figures 8–10) depend on.

/// A small, fast, deterministic PRNG (xorshift64* seeded via splitmix64).
///
/// Not cryptographic; statistical quality is ample for workload generation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from an explicit seed. A zero seed is remapped to
    /// a fixed non-zero constant (xorshift has a zero fixpoint).
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble so that adjacent seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0x1234_5678_9ABC_DEF0 } else { z },
        }
    }

    /// Forks an independent stream; the fork is a deterministic function of
    /// the current state and `salt`.
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds used here (< 2^32), and determinism matters more.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive. Panics if `lo > hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_range_i64: {lo} > {hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let off = ((self.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
        (lo as i128 + off) as i64
    }

    /// Uniform usize in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to [0,1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.gen_index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `n` distinct indices from `[0, bound)` (n <= bound),
    /// returned in random order.
    pub fn sample_indices(&mut self, bound: usize, n: usize) -> Vec<usize> {
        assert!(n <= bound, "sample_indices: n > bound");
        let mut all: Vec<usize> = (0..bound).collect();
        self.shuffle(&mut all);
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.gen_below(13) < 13);
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut r = Rng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "range endpoints should be reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::new(11);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::new(6);
        let s = r.sample_indices(10, 6);
        assert_eq!(s.len(), 6);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut base = Rng::new(3);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(1);
        // Forks taken at different points differ even with the same salt.
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn pick_returns_member() {
        let mut r = Rng::new(8);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
