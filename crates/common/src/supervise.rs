//! Cooperative supervision primitives: structured failures, wall-clock
//! deadlines, and a panic sandbox.
//!
//! A testing campaign must survive the very bugs it hunts (§2.3): a
//! sabotaged rule may panic inside `Plan(q, ¬R)`, loop forever, or blow
//! through a memory budget, yet the campaign should record the failure,
//! quarantine the input, and keep going. This module is the bottom layer
//! of that story:
//!
//! * [`Failure`] — the structured failure taxonomy (panic / timeout /
//!   budget) a supervised invocation can end in;
//! * [`Deadline`] — a cheap, copyable wall-clock budget token threaded
//!   into the optimizer's memo search loop and the executor's batch loop,
//!   checked cooperatively at task-expansion and per-batch boundaries;
//! * [`sandbox`] — `catch_unwind` around a fallible closure, converting
//!   a panic payload into `Failure::Panic` (message + site) and mapping
//!   `Error::Timeout` / `Error::Budget` into their `Failure` kinds.
//!
//! The campaign layer (in `ruletest-core`) builds quarantine and resume
//! semantics on top; nothing here allocates unless a failure actually
//! happens, so supervision costs nothing measurable on the clean path.

use crate::error::{Error, Result};
use std::any::Any;
use std::fmt;
use std::time::{Duration, Instant};

/// How a supervised invocation failed. Every variant carries a
/// human-readable message; `Panic` also records the supervision site so
/// quarantine entries and repro bundles can say *where* the payload
/// escaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The invocation panicked; the sandbox caught the unwind.
    Panic {
        /// The panic payload, downcast to a string when possible.
        message: String,
        /// The supervision site label (e.g. `optimize:RuleName`).
        site: String,
    },
    /// A cooperative [`Deadline`] expired (or a chaos stall was injected).
    Timeout { message: String },
    /// A resource cap was exhausted (memo growth, row count, work units).
    BudgetExhausted { message: String },
}

impl Failure {
    pub fn panic(message: impl Into<String>, site: impl Into<String>) -> Self {
        Failure::Panic {
            message: message.into(),
            site: site.into(),
        }
    }

    pub fn timeout(message: impl Into<String>) -> Self {
        Failure::Timeout {
            message: message.into(),
        }
    }

    pub fn budget(message: impl Into<String>) -> Self {
        Failure::BudgetExhausted {
            message: message.into(),
        }
    }

    /// Stable kind tag used in telemetry events, quarantine files, and
    /// report sections.
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Panic { .. } => "panic",
            Failure::Timeout { .. } => "timeout",
            Failure::BudgetExhausted { .. } => "budget",
        }
    }

    /// The human-readable message (panic payload / deadline description).
    pub fn message(&self) -> &str {
        match self {
            Failure::Panic { message, .. }
            | Failure::Timeout { message }
            | Failure::BudgetExhausted { message } => message,
        }
    }

    /// Classifies an ordinary [`Error`] as a supervision failure, when it
    /// is one. `Timeout` and `Budget` are sandbox outcomes; everything
    /// else (invalid tree, unsupported dialect, ...) stays an error the
    /// caller handles as before.
    pub fn from_error(e: &Error) -> Option<Failure> {
        match e {
            Error::Timeout(m) => Some(Failure::timeout(m.clone())),
            Error::Budget(m) => Some(Failure::budget(m.clone())),
            _ => None,
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Panic { message, site } => write!(f, "panic at {site}: {message}"),
            Failure::Timeout { message } => write!(f, "timeout: {message}"),
            Failure::BudgetExhausted { message } => write!(f, "budget exhausted: {message}"),
        }
    }
}

/// A cooperative wall-clock budget token.
///
/// `Deadline::none()` (the default) never expires and checks compile to
/// one branch on an `Option`. An armed deadline is checked at coarse
/// boundaries — optimizer pass/task expansion, executor batches — so a
/// runaway rule or plan is abandoned within one boundary of the limit.
///
/// Equality deliberately ignores the absolute [`Instant`]: two configs
/// with the same limit are the same configuration, regardless of when
/// each was armed. Wall-clock state must never leak into cache keys —
/// [`Deadline`] is excluded from `CacheKey` entirely.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
    limit_ms: u64,
}

impl Deadline {
    /// The unarmed deadline: never expires.
    pub const fn none() -> Self {
        Deadline {
            at: None,
            limit_ms: 0,
        }
    }

    /// Arms a deadline `ms` milliseconds from now. `0` means unarmed.
    pub fn after_ms(ms: u64) -> Self {
        if ms == 0 {
            return Deadline::none();
        }
        Deadline {
            at: Instant::now().checked_add(Duration::from_millis(ms)),
            limit_ms: ms,
        }
    }

    /// True when a limit is armed.
    pub fn is_set(&self) -> bool {
        self.at.is_some()
    }

    /// Re-arms the same limit from *now*. A `Deadline` stored in a
    /// config outlives the moment it was parsed; re-arming at the start
    /// of each supervised operation turns it into a per-operation budget
    /// instead of one wall-clock ticking from process start. Unarmed
    /// deadlines stay unarmed.
    pub fn rearm(&self) -> Self {
        Deadline::after_ms(self.limit_ms)
    }

    /// The configured limit in milliseconds (0 when unarmed).
    pub fn limit_ms(&self) -> u64 {
        self.limit_ms
    }

    /// True when the armed limit has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|t| Instant::now() >= t)
    }

    /// Cooperative check: `Err(Error::Timeout)` once expired, tagged with
    /// `what` so the failure names the loop that was abandoned.
    #[inline]
    pub fn check(&self, what: &str) -> Result<()> {
        if self.expired() {
            Err(Error::timeout(format!(
                "{what} exceeded {}ms deadline",
                self.limit_ms
            )))
        } else {
            Ok(())
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        // Same limit = same configuration; the absolute instant is
        // wall-clock state, not configuration.
        self.at.is_some() == other.at.is_some() && self.limit_ms == other.limit_ms
    }
}

impl Eq for Deadline {}

/// Renders a caught panic payload as a message. Panic payloads are
/// `&str` or `String` in practice; anything else gets a stable marker.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` in a panic sandbox and classifies the outcome:
///
/// * a panic is caught and becomes [`Failure::Panic`] (payload message +
///   `site`);
/// * `Err(Error::Timeout)` / `Err(Error::Budget)` become their
///   [`Failure`] kinds;
/// * every other error passes through as `Ok(Err(_))` — it is an ordinary
///   error the caller already has semantics for, not a sandbox event.
pub fn sandbox<T>(
    site: &str,
    f: impl FnOnce() -> Result<T>,
) -> std::result::Result<Result<T>, Failure> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(Ok(v)),
        Ok(Err(e)) => match Failure::from_error(&e) {
            Some(fail) => Err(fail),
            None => Ok(Err(e)),
        },
        Err(payload) => Err(Failure::panic(panic_message(payload.as_ref()), site)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_set());
        assert!(!d.expired());
        assert_eq!(d.limit_ms(), 0);
        d.check("loop").unwrap();
        assert_eq!(Deadline::after_ms(0), Deadline::none());
    }

    #[test]
    fn armed_deadline_expires_and_checks_fail() {
        let d = Deadline::after_ms(1);
        assert!(d.is_set());
        // A genuine runaway loop: spin until the cooperative check fires.
        let start = Instant::now();
        loop {
            if let Err(e) = d.check("spin loop") {
                assert!(matches!(e, Error::Timeout(_)), "{e}");
                assert!(e.to_string().contains("spin loop"), "{e}");
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "deadline never fired"
            );
        }
    }

    #[test]
    fn deadline_equality_ignores_the_instant() {
        let a = Deadline::after_ms(50);
        std::thread::sleep(Duration::from_millis(2));
        let b = Deadline::after_ms(50);
        assert_eq!(a, b);
        assert_ne!(a, Deadline::after_ms(60));
        assert_ne!(a, Deadline::none());
    }

    #[test]
    fn sandbox_catches_panics_with_message_and_site() {
        let out: std::result::Result<Result<u32>, Failure> =
            sandbox("optimize:BadRule", || panic!("rule exploded"));
        let fail = out.unwrap_err();
        assert_eq!(fail.kind(), "panic");
        assert_eq!(fail.message(), "rule exploded");
        assert!(fail.to_string().contains("optimize:BadRule"), "{fail}");
        // String payloads too.
        let out: std::result::Result<Result<u32>, Failure> =
            sandbox("s", || panic!("{}", format!("dynamic {}", 7)));
        assert_eq!(out.unwrap_err().message(), "dynamic 7");
    }

    #[test]
    fn sandbox_classifies_timeout_and_budget_errors() {
        let out = sandbox("s", || -> Result<u32> { Err(Error::timeout("memo loop")) });
        assert_eq!(out.unwrap_err().kind(), "timeout");
        let out = sandbox("s", || -> Result<u32> { Err(Error::budget("rows")) });
        assert_eq!(out.unwrap_err().kind(), "budget");
        // Ordinary errors pass through unclassified.
        let out = sandbox("s", || -> Result<u32> { Err(Error::invalid("tree")) });
        assert_eq!(out.unwrap().unwrap_err(), Error::invalid("tree"));
        // Clean results pass through.
        let out = sandbox("s", || Ok(41));
        assert_eq!(out.unwrap().unwrap(), 41);
    }

    #[test]
    fn failure_kinds_and_from_error_round_trip() {
        assert_eq!(
            Failure::from_error(&Error::timeout("x")),
            Some(Failure::timeout("x"))
        );
        assert_eq!(
            Failure::from_error(&Error::budget("y")),
            Some(Failure::budget("y"))
        );
        assert_eq!(Failure::from_error(&Error::internal("z")), None);
        assert_eq!(Failure::budget("y").kind(), "budget");
        assert_eq!(Failure::timeout("x").kind(), "timeout");
    }
}
