//! Shared primitives for the `ruletest` workspace.
//!
//! This crate deliberately has no dependencies: it defines the data model
//! (SQL values and rows), deterministic randomness, identifier newtypes,
//! error types, and multiset-based result comparison that every other crate
//! builds on.

pub mod chaos;
pub mod check;
pub mod error;
pub mod ids;
pub mod multiset;
pub mod pool;
pub mod rng;
pub mod supervise;
pub mod value;

pub use error::{Error, Result};
pub use ids::{ColId, RuleId, TableId};
pub use multiset::{diff_multisets, multisets_equal, ResultDiff};
pub use pool::{par_map, par_map_supervised, poolstats, try_par_map, Parallelism, ThreadPool};
pub use rng::Rng;
pub use supervise::{sandbox, Deadline, Failure};
pub use value::{DataType, Row, Value};
