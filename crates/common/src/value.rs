//! SQL values, data types, and rows.
//!
//! The value domain is intentionally small (NULL, BOOL, INT, STRING): the
//! framework tests *transformation rules*, whose firing conditions depend on
//! operator shapes, keys, and nullability — not on a rich type system.
//! Floating point is excluded on purpose so that two semantically equivalent
//! plans always produce bit-identical results (no rounding divergence in
//! correctness validation).

use std::cmp::Ordering;
use std::fmt;

/// The static type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "BOOLEAN"),
            DataType::Int => write!(f, "BIGINT"),
            DataType::Str => write!(f, "VARCHAR"),
        }
    }
}

/// A runtime SQL value.
///
/// `Null` is a member of every type; typed nulls are not distinguished
/// because the executor never needs to recover a null's type at runtime.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
}

impl Value {
    /// Returns this value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL comparison: returns `None` if either side is NULL (UNKNOWN),
    /// otherwise the ordering of the two non-null values.
    ///
    /// Comparing values of different non-null types is an invariant
    /// violation (the planner type-checks expressions), and panics.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => panic!("type error: comparing {a:?} with {b:?}"),
        }
    }

    /// Total order used for sorting and multiset normalization:
    /// NULL sorts first; then by type tag; then by value.
    ///
    /// This is *not* SQL comparison — it exists so plans can be compared as
    /// multisets and so ORDER BY has deterministic NULL placement
    /// (NULLS FIRST, matching the dialect we generate).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }

    /// Extracts an `i64`, panicking on non-int; NULL returns `None`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(*i),
            other => panic!("type error: expected INT, got {other:?}"),
        }
    }

    /// Extracts a `bool`, panicking on non-bool; NULL returns `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            other => panic!("type error: expected BOOL, got {other:?}"),
        }
    }

    /// Renders the value as a SQL literal.
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(true) => "TRUE".to_string(),
            Value::Bool(false) => "FALSE".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// A row of values. Positional — the surrounding operator's output schema
/// gives each position its column id.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_is_unknown_with_null() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_orders_non_nulls() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Str("b".into()).sql_cmp(&Value::Str("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Bool(true).sql_cmp(&Value::Bool(true)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    #[should_panic(expected = "type error")]
    fn sql_cmp_panics_on_cross_type() {
        let _ = Value::Int(1).sql_cmp(&Value::Str("1".into()));
    }

    #[test]
    fn total_cmp_puts_null_first_and_is_total() {
        let mut vals = vec![
            Value::Str("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(false),
            Value::Int(-2),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Int(-2),
                Value::Int(5),
                Value::Str("a".into()),
            ]
        );
    }

    #[test]
    fn literal_rendering_escapes_quotes() {
        assert_eq!(Value::Str("O'Brien".into()).to_sql_literal(), "'O''Brien'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Int(-9).to_sql_literal(), "-9");
        assert_eq!(Value::Bool(true).to_sql_literal(), "TRUE");
    }

    #[test]
    fn extractors_handle_null() {
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Null.as_bool(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn data_type_of_null_is_none() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(0).data_type(), Some(DataType::Int));
    }
}
