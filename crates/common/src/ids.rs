//! Identifier newtypes used across the workspace.

use std::fmt;

/// Identifies a base table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies a column *instance* within one logical query tree.
///
/// Column ids are assigned per query: every `Get` instantiation mints fresh
/// ids for the columns it produces (so self-joins of the same base table get
/// distinct ids), and computed columns (projections, aggregates) mint fresh
/// ids too. Operators reference columns exclusively by id, which is what
/// makes structural transformations (commute, associate) order-insensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId(pub u32);

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies a transformation rule in the optimizer's rule table.
///
/// Rule ids are dense (0..n) so rule masks can be bitsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u16);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_kind_prefix() {
        assert_eq!(TableId(3).to_string(), "T3");
        assert_eq!(ColId(17).to_string(), "c17");
        assert_eq!(RuleId(5).to_string(), "r5");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(ColId(1));
        set.insert(ColId(1));
        set.insert(ColId(2));
        assert_eq!(set.len(), 2);
        assert!(ColId(1) < ColId(2));
        assert!(RuleId(0) < RuleId(9));
    }
}
