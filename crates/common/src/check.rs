//! Minimal in-repo property-based testing.
//!
//! The workspace must build and test with **zero external dependencies**
//! (offline, registry-free), so this module replaces `proptest` for the
//! handful of property tests the repo carries. It provides:
//!
//! * a [`Gen`] trait — a value generator over the workspace's own
//!   deterministic [`Rng`], with optional shrinking;
//! * combinators (`vecs`, `pairs`, `options`, `one_of`, ranges, …);
//! * a [`forall`] runner plus the [`forall!`]/[`ensure!`] macros, which
//!   run `cases` random cases and, on failure, greedily shrink the
//!   counterexample (numeric halving, vector halving) before panicking
//!   with the minimal case.
//!
//! Failures reproduce exactly: the panic message names the `CheckConfig`
//! seed, and every case is derived from it deterministically.

use crate::Rng;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How many cases to run and where the randomness comes from.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    pub cases: u32,
    pub seed: u64,
    /// Upper bound on property re-runs spent shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            seed: 0x5EED_CA5E,
            max_shrink_steps: 512,
        }
    }
}

impl CheckConfig {
    /// Default configuration with an explicit case count.
    pub fn cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A random value generator with optional shrinking.
///
/// `shrink` returns *simpler candidates* for a failing value; the runner
/// keeps any candidate that still fails and iterates to a local minimum.
pub trait Gen {
    type Value: Clone + Debug;
    fn generate(&self, rng: &mut Rng) -> Self::Value;
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<V: Clone + Debug> Gen for Box<dyn Gen<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

/// Runs `prop` on `cfg.cases` generated values; on failure, shrinks and
/// panics with the minimal counterexample.
pub fn forall<G: Gen>(cfg: &CheckConfig, gen: &G, prop: impl Fn(G::Value) -> Result<(), String>) {
    let mut rng = Rng::new(cfg.seed);
    for case in 0..cfg.cases {
        let mut case_rng = rng.fork(case as u64);
        let value = gen.generate(&mut case_rng);
        if let Err(msg) = run_guarded(&prop, value.clone()) {
            let (min, min_msg, steps) = shrink_failure(cfg, gen, &prop, value, msg);
            panic!(
                "property failed (case {}/{}, seed {:#x}; minimized in {} step(s))\n\
                 minimal counterexample: {:#?}\n{}",
                case + 1,
                cfg.cases,
                cfg.seed,
                steps,
                min,
                min_msg
            );
        }
    }
}

/// A property panic (e.g. a failing `unwrap`) counts as a failure and is
/// shrunk like any other.
fn run_guarded<V>(prop: &impl Fn(V) -> Result<(), String>, value: V) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => Err(format!("property panicked: {}", panic_text(&payload))),
    }
}

/// Extracts the human-readable message from a caught panic payload.
/// (Takes the box, not `&dyn Any`: coercing `&Box<dyn Any>` would downcast
/// against the box itself and always miss.)
fn panic_text(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedy coordinate descent: adopt the first shrink candidate that still
/// fails, restart from it, stop at a local minimum or the step budget.
fn shrink_failure<G: Gen>(
    cfg: &CheckConfig,
    gen: &G,
    prop: &impl Fn(G::Value) -> Result<(), String>,
    value: G::Value,
    msg: String,
) -> (G::Value, String, u32) {
    let mut current = value;
    let mut current_msg = msg;
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in gen.shrink(&current) {
            steps += 1;
            if let Err(m) = run_guarded(prop, candidate.clone()) {
                current = candidate;
                current_msg = m;
                continue 'outer;
            }
            if steps >= cfg.max_shrink_steps {
                break;
            }
        }
        break;
    }
    (current, current_msg, steps)
}

/// Property form of `assert!`: early-returns `Err` from the property body.
#[macro_export]
macro_rules! ensure {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "ensure!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Property form of `assert_eq!`.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "ensure_eq! failed at {}:{}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                left,
                right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Property form of `assert_ne!`.
#[macro_export]
macro_rules! ensure_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "ensure_ne! failed at {}:{}\n  both: {:?}",
                file!(),
                line!(),
                left
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!("{}\n  both: {:?}", format!($($fmt)+), left));
        }
    }};
}

/// `forall!(cfg; a in gen_a, b in gen_b => { ... Ok(()) })` — the sugar
/// the ported property tests use. The body is a `Result<(), String>`
/// expression; use `ensure!`/`ensure_eq!` inside it.
#[macro_export]
macro_rules! forall {
    ($cfg:expr; $($name:ident in $g:expr),+ $(,)? => $body:expr) => {
        $crate::check::forall(&$cfg, &($($g,)+), |($($name,)+)| $body)
    };
}

// ---- Tuple generators (used by the `forall!` macro) ----

macro_rules! impl_gen_tuple {
    ($(($($G:ident / $v:ident / $i:tt),+);)+) => {$(
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_gen_tuple! {
    (A/a/0);
    (A/a/0, B/b/1);
    (A/a/0, B/b/1, C/c/2);
    (A/a/0, B/b/1, C/c/2, D/d/3);
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4);
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5);
}

/// The concrete generators. Import as `use ruletest_common::check::gen;`.
pub mod gen {
    use super::{Gen, Rng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Any `u64` (uniform). Shrinks by halving toward zero.
    pub fn u64s() -> U64Any {
        U64Any
    }

    #[derive(Clone, Copy)]
    pub struct U64Any;
    impl Gen for U64Any {
        type Value = u64;
        fn generate(&self, rng: &mut Rng) -> u64 {
            rng.next_u64()
        }
        fn shrink(&self, v: &u64) -> Vec<u64> {
            shrink_u64(*v)
        }
    }

    fn shrink_u64(v: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if v > 0 {
            out.push(0);
            // Approach v from below geometrically so boundary-style
            // failures (`v >= N`) shrink to N in O(log v) adopted steps.
            for k in 1..=4u32 {
                let cand = v - (v >> k).max(1);
                out.push(cand);
            }
            out.push(v - 1);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `i64` in `[range.start, range.end)`. Shrinks toward zero when the
    /// range contains it, else toward the range start.
    pub fn i64s(range: Range<i64>) -> I64Range {
        assert!(range.start < range.end, "i64s: empty range");
        I64Range { range }
    }

    #[derive(Clone)]
    pub struct I64Range {
        range: Range<i64>,
    }
    impl Gen for I64Range {
        type Value = i64;
        fn generate(&self, rng: &mut Rng) -> i64 {
            rng.gen_range_i64(self.range.start, self.range.end - 1)
        }
        fn shrink(&self, v: &i64) -> Vec<i64> {
            let pivot = if self.range.contains(&0) {
                0
            } else {
                self.range.start
            };
            let mut out = Vec::new();
            if *v != pivot {
                out.push(pivot);
                let mid = pivot + (v - pivot) / 2;
                if mid != *v {
                    out.push(mid);
                }
                out.push(v - (v - pivot).signum());
            }
            out.dedup();
            out
        }
    }

    /// `usize` in `[range.start, range.end)`. Shrinks toward the start.
    pub fn usizes(range: Range<usize>) -> UsizeRange {
        assert!(range.start < range.end, "usizes: empty range");
        UsizeRange { range }
    }

    #[derive(Clone)]
    pub struct UsizeRange {
        range: Range<usize>,
    }
    impl Gen for UsizeRange {
        type Value = usize;
        fn generate(&self, rng: &mut Rng) -> usize {
            self.range.start + rng.gen_index(self.range.end - self.range.start)
        }
        fn shrink(&self, v: &usize) -> Vec<usize> {
            let lo = self.range.start;
            let mut out = Vec::new();
            if *v > lo {
                out.push(lo);
                let mid = lo + (v - lo) / 2;
                if mid != *v {
                    out.push(mid);
                }
                out.push(v - 1);
            }
            out.dedup();
            out
        }
    }

    /// `f64` uniform in `[range.start, range.end)`. Shrinks toward the
    /// start.
    pub fn f64s(range: Range<f64>) -> F64Range {
        assert!(range.start < range.end, "f64s: empty range");
        F64Range { range }
    }

    #[derive(Clone)]
    pub struct F64Range {
        range: Range<f64>,
    }
    impl Gen for F64Range {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.range.start + unit * (self.range.end - self.range.start)
        }
        fn shrink(&self, v: &f64) -> Vec<f64> {
            if *v > self.range.start {
                vec![self.range.start, (self.range.start + v) / 2.0]
            } else {
                vec![]
            }
        }
    }

    /// Fair coin. `true` shrinks to `false`.
    pub fn bools() -> BoolAny {
        BoolAny
    }

    #[derive(Clone, Copy)]
    pub struct BoolAny;
    impl Gen for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.gen_bool(0.5)
        }
        fn shrink(&self, v: &bool) -> Vec<bool> {
            if *v {
                vec![false]
            } else {
                vec![]
            }
        }
    }

    /// `Vec<T>` with length uniform in `[range.start, range.end)`.
    /// Shrinks by halving the length (keeping either half), dropping the
    /// last element, and shrinking each element in place.
    pub fn vecs<G: Gen>(inner: G, range: Range<usize>) -> VecGen<G> {
        assert!(range.start < range.end, "vecs: empty range");
        VecGen { inner, range }
    }

    #[derive(Clone)]
    pub struct VecGen<G> {
        inner: G,
        range: Range<usize>,
    }
    impl<G: Gen> Gen for VecGen<G> {
        type Value = Vec<G::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
            let len = self.range.start + rng.gen_index(self.range.end - self.range.start);
            (0..len).map(|_| self.inner.generate(rng)).collect()
        }
        fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
            let lo = self.range.start;
            let mut out: Vec<Vec<G::Value>> = Vec::new();
            if v.len() > lo {
                let half = (v.len() / 2).max(lo);
                if half < v.len() {
                    out.push(v[..half].to_vec());
                    out.push(v[v.len() - half..].to_vec());
                }
                out.push(v[..v.len() - 1].to_vec());
            }
            for (i, elem) in v.iter().enumerate() {
                for cand in self.inner.shrink(elem).into_iter().take(2) {
                    let mut next = v.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// `(A, B)` pairs; shrinks coordinate-wise.
    pub fn pairs<A: Gen, B: Gen>(a: A, b: B) -> (A, B) {
        (a, b)
    }

    /// `Option<T>`: `Some` with probability `p_some`. `Some(v)` shrinks to
    /// `None` and to `Some(shrunk v)`.
    pub fn options<G: Gen>(inner: G, p_some: f64) -> OptionGen<G> {
        OptionGen { inner, p_some }
    }

    #[derive(Clone)]
    pub struct OptionGen<G> {
        inner: G,
        p_some: f64,
    }
    impl<G: Gen> Gen for OptionGen<G> {
        type Value = Option<G::Value>;
        fn generate(&self, rng: &mut Rng) -> Option<G::Value> {
            if rng.gen_bool(self.p_some) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
        fn shrink(&self, v: &Option<G::Value>) -> Vec<Option<G::Value>> {
            match v {
                None => vec![],
                Some(inner) => {
                    let mut out = vec![None];
                    out.extend(self.inner.shrink(inner).into_iter().map(Some));
                    out
                }
            }
        }
    }

    /// ASCII strings over `alphabet` with length uniform in
    /// `[range.start, range.end)`. Shrinks by halving the length.
    pub fn strings(alphabet: &'static str, range: Range<usize>) -> StrGen {
        assert!(range.start < range.end, "strings: empty range");
        assert!(!alphabet.is_empty(), "strings: empty alphabet");
        StrGen { alphabet, range }
    }

    #[derive(Clone)]
    pub struct StrGen {
        alphabet: &'static str,
        range: Range<usize>,
    }
    impl Gen for StrGen {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            let chars: Vec<char> = self.alphabet.chars().collect();
            let len = self.range.start + rng.gen_index(self.range.end - self.range.start);
            (0..len).map(|_| *rng.pick(&chars)).collect()
        }
        fn shrink(&self, v: &String) -> Vec<String> {
            let lo = self.range.start;
            let mut out = Vec::new();
            if v.chars().count() > lo {
                let half: String = v.chars().take((v.chars().count() / 2).max(lo)).collect();
                if half.len() < v.len() {
                    out.push(half);
                }
                let mut minus_one: Vec<char> = v.chars().collect();
                minus_one.pop();
                out.push(minus_one.into_iter().collect());
            }
            out
        }
    }

    /// A constant. Never shrinks.
    pub fn just<V: Clone + Debug>(value: V) -> JustGen<V> {
        JustGen { value }
    }

    #[derive(Clone)]
    pub struct JustGen<V> {
        value: V,
    }
    impl<V: Clone + Debug> Gen for JustGen<V> {
        type Value = V;
        fn generate(&self, _rng: &mut Rng) -> V {
            self.value.clone()
        }
    }

    /// An arbitrary closure generator. Never shrinks — prefer composing
    /// the primitive generators when shrinking matters.
    pub fn from_fn<V: Clone + Debug, F: Fn(&mut Rng) -> V>(f: F) -> FnGen<F> {
        FnGen { f }
    }

    #[derive(Clone)]
    pub struct FnGen<F> {
        f: F,
    }
    impl<V: Clone + Debug, F: Fn(&mut Rng) -> V> Gen for FnGen<F> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            (self.f)(rng)
        }
    }

    /// Uniform choice among boxed generators of a common value type.
    /// Shrink candidates are pooled from every branch (a candidate that
    /// no branch could have produced is harmless — it is only kept if the
    /// property still fails on it).
    pub fn one_of<V: Clone + Debug>(gens: Vec<Box<dyn Gen<Value = V>>>) -> OneOfGen<V> {
        assert!(!gens.is_empty(), "one_of: no generators");
        OneOfGen { gens }
    }

    pub struct OneOfGen<V> {
        gens: Vec<Box<dyn Gen<Value = V>>>,
    }
    impl<V: Clone + Debug> Gen for OneOfGen<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            let i = rng.gen_index(self.gens.len());
            self.gens[i].generate(rng)
        }
        fn shrink(&self, v: &V) -> Vec<V> {
            let mut out = Vec::new();
            for g in &self.gens {
                out.extend(g.shrink(v).into_iter().take(2));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    #[test]
    fn passing_property_runs_all_cases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let cfg = CheckConfig::cases(37);
        let calls = AtomicU32::new(0);
        forall(&cfg, &(gen::u64s(),), |(_v,)| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn failures_shrink_to_the_boundary() {
        // Property: v < 1000. Fails for v >= 1000; halving must land on a
        // small counterexample (locally minimal: 1000 exactly, since 999
        // passes).
        let cfg = CheckConfig {
            cases: 200,
            ..CheckConfig::default()
        };
        let result = catch_unwind(|| {
            forall(&cfg, &(gen::u64s(),), |(v,)| {
                if v >= 1000 {
                    Err(format!("too big: {v}"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = panic_text(&result.expect_err("property must fail"));
        assert!(
            msg.contains("minimal counterexample"),
            "missing shrink report: {msg}"
        );
        assert!(msg.contains("1000"), "did not shrink to 1000: {msg}");
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        let cfg = CheckConfig::default();
        let result = catch_unwind(|| {
            forall(&cfg, &(gen::vecs(gen::i64s(0..100), 0..30),), |(v,)| {
                if v.len() >= 5 {
                    Err("long".to_string())
                } else {
                    Ok(())
                }
            });
        });
        let msg = panic_text(&result.expect_err("property must fail"));
        // The minimal failing vector has exactly 5 elements; its debug
        // print in the panic lists 5 entries. Check the header is there
        // and that no 6-element vector survived by counting commas is
        // brittle — instead re-run the shrinker directly.
        assert!(msg.contains("minimal counterexample"), "{msg}");
        let gen = (gen::vecs(gen::i64s(0..100), 0..30),);
        let prop = |(v,): (Vec<i64>,)| {
            if v.len() >= 5 {
                Err("long".to_string())
            } else {
                Ok(())
            }
        };
        let start = (vec![7i64; 29],);
        let (min, _, _) = shrink_failure(&cfg, &gen, &prop, start, "long".into());
        assert_eq!(min.0.len(), 5, "shrunk to {:?}", min.0);
    }

    #[test]
    fn panics_inside_properties_are_failures() {
        let cfg = CheckConfig::cases(8);
        let result = catch_unwind(|| {
            forall(&cfg, &(gen::bools(),), |(_b,)| -> Result<(), String> {
                panic!("boom");
            });
        });
        let msg = panic_text(&result.expect_err("must fail"));
        assert!(msg.contains("property panicked"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn same_config_generates_same_cases() {
        let cfg = CheckConfig::default();
        let collect = || {
            let mut seen = Vec::new();
            let seen_cell = std::cell::RefCell::new(&mut seen);
            forall(&cfg, &(gen::u64s(), gen::usizes(1..9)), |(a, b)| {
                seen_cell.borrow_mut().push((a, b));
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn tuple_shrinking_is_coordinate_wise() {
        let g = (gen::usizes(0..100), gen::usizes(0..100));
        let cands = g.shrink(&(10, 20));
        assert!(cands.iter().any(|&(a, b)| a < 10 && b == 20));
        assert!(cands.iter().any(|&(a, b)| a == 10 && b < 20));
    }

    #[test]
    fn option_and_string_generators_cover_their_domains() {
        let mut rng = Rng::new(1);
        let og = gen::options(gen::i64s(0..4), 0.5);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match og.generate(&mut rng) {
                Some(v) => {
                    assert!((0..4).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
        let sg = gen::strings("ab", 0..4);
        for _ in 0..100 {
            let s = sg.generate(&mut rng);
            assert!(s.len() < 4);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
