//! Hand-rolled parallel execution primitives (no external dependencies).
//!
//! The campaign loop — per-rule query generation, bipartite-graph edge
//! probing, and `Plan(q)` vs `Plan(q, ¬R)` correctness executions — is
//! embarrassingly parallel *across targets/queries* while each item's
//! computation stays a pure function of its inputs. Two primitives cover
//! it:
//!
//! * [`par_map`] — a scoped, work-stealing parallel map built on
//!   `std::thread::scope` and an atomic item counter. Results come back
//!   **in item order**, so a campaign's output is byte-identical for any
//!   thread count (determinism is delegated to the per-item seeds; see
//!   [`Parallelism`]).
//! * [`ThreadPool`] — a small persistent channel-fed pool for
//!   fire-and-forget `'static` jobs. Panicking jobs are caught and
//!   counted; the pool never deadlocks on shutdown.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Process-global worker-pool statistics, collected by [`par_map`] when
/// enabled and read back into campaign run reports.
///
/// The collector lives here (not in the telemetry crate) so `common`
/// keeps zero dependencies in either direction; it is a handful of
/// atomics, costs one relaxed load per `par_map` call when disabled, and
/// aggregates across every parallel stage in the process.
pub mod poolstats {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static PAR_CALLS: AtomicU64 = AtomicU64::new(0);
    static TASKS: AtomicU64 = AtomicU64::new(0);
    static WORKERS: AtomicU64 = AtomicU64::new(0);
    static STEALS: AtomicU64 = AtomicU64::new(0);
    static BUSY_NS: AtomicU64 = AtomicU64::new(0);
    static IDLE_NS: AtomicU64 = AtomicU64::new(0);

    /// A point-in-time copy of the pool counters.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct PoolSnapshot {
        /// `par_map` invocations that ran on more than one worker.
        pub par_calls: u64,
        /// Items executed across all calls (including sequential ones).
        pub tasks: u64,
        /// Workers launched across all calls.
        pub workers: u64,
        /// Items a worker claimed beyond its even share of a call — the
        /// imbalance the stealing cursor absorbed.
        pub steals: u64,
        /// Worker time spent inside item closures.
        pub busy_ns: u64,
        /// Worker lifetime spent outside item closures.
        pub idle_ns: u64,
    }

    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    pub(super) fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Zeroes every counter (the enable flag is left alone).
    pub fn reset() {
        for c in [&PAR_CALLS, &TASKS, &WORKERS, &STEALS, &BUSY_NS, &IDLE_NS] {
            c.store(0, Ordering::Relaxed);
        }
    }

    pub fn snapshot() -> PoolSnapshot {
        PoolSnapshot {
            par_calls: PAR_CALLS.load(Ordering::Relaxed),
            tasks: TASKS.load(Ordering::Relaxed),
            workers: WORKERS.load(Ordering::Relaxed),
            steals: STEALS.load(Ordering::Relaxed),
            busy_ns: BUSY_NS.load(Ordering::Relaxed),
            idle_ns: IDLE_NS.load(Ordering::Relaxed),
        }
    }

    pub(super) fn record_sequential(tasks: u64) {
        TASKS.fetch_add(tasks, Ordering::Relaxed);
    }

    pub(super) fn record_call(workers: u64) {
        PAR_CALLS.fetch_add(1, Ordering::Relaxed);
        WORKERS.fetch_add(workers, Ordering::Relaxed);
    }

    pub(super) fn record_worker(tasks: u64, fair_share: u64, busy_ns: u64, lifetime_ns: u64) {
        TASKS.fetch_add(tasks, Ordering::Relaxed);
        STEALS.fetch_add(tasks.saturating_sub(fair_share), Ordering::Relaxed);
        BUSY_NS.fetch_add(busy_ns, Ordering::Relaxed);
        IDLE_NS.fetch_add(lifetime_ns.saturating_sub(busy_ns), Ordering::Relaxed);
    }
}

/// Campaign-level parallelism configuration.
///
/// `seed` is the campaign master seed: parallel stages derive each item's
/// RNG stream from `(seed, item index)` only, never from scheduling order,
/// which is what makes results reproducible at any `threads` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads for parallel stages (1 = fully sequential).
    pub threads: usize,
    /// Master seed parallel stages derive per-item streams from.
    pub seed: u64,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self {
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            seed: 42,
        }
    }
}

impl Parallelism {
    /// Sequential execution (the reference the determinism tests compare
    /// against).
    pub fn single() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }

    /// `threads` workers with the default seed.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }
}

/// Applies `f` to every item on up to `threads` workers and returns the
/// results **in item order**.
///
/// Work distribution is a shared atomic cursor (item-granularity
/// stealing): an idle worker grabs the next unclaimed index, so uneven
/// item costs balance automatically. If `f` panics on any item, all
/// workers finish their in-flight items, and the panic resumes on the
/// caller thread (lowest failing index wins — also deterministic).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    let stats = poolstats::enabled();
    if threads <= 1 {
        if stats {
            poolstats::record_sequential(items.len() as u64);
        }
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<thread::Result<R>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);
    if stats {
        poolstats::record_call(threads as u64);
    }
    // Even share per worker; anything a worker executes beyond this is
    // imbalance the stealing cursor moved to it ("steals" in the stats).
    let fair_share = (items.len() as u64).div_ceil(threads as u64);

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let born = stats.then(std::time::Instant::now);
                let mut tasks = 0u64;
                let mut busy_ns = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let t0 = stats.then(std::time::Instant::now);
                    let out = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                    if let Some(t0) = t0 {
                        busy_ns += t0.elapsed().as_nanos() as u64;
                        tasks += 1;
                    }
                    slots.lock().expect("pool slots poisoned").as_mut_slice()[i] = Some(out);
                }
                if let Some(born) = born {
                    let lifetime_ns = born.elapsed().as_nanos() as u64;
                    poolstats::record_worker(tasks, fair_share, busy_ns, lifetime_ns);
                }
            });
        }
    });

    let slots = slots.into_inner().expect("pool slots poisoned");
    let mut out = Vec::with_capacity(items.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.unwrap_or_else(|| panic!("par_map item {i} was never executed")) {
            Ok(r) => out.push(r),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Result-preserving supervised variant of [`par_map`].
///
/// [`par_map`] deliberately has abort semantics: one panicking item
/// resumes the unwind on the caller and discards every other worker's
/// completed result. A supervised campaign wants the opposite — keep
/// everything that finished and hand back the failures as data. Here a
/// panicking item becomes `Err(Failure::Panic)` (payload message plus
/// `site[index]`) in its own slot, while all other items' results are
/// preserved, still in item order.
pub fn par_map_supervised<T, R, F>(
    threads: usize,
    items: &[T],
    site: &str,
    f: F,
) -> Vec<Result<R, crate::supervise::Failure>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(threads, items, |i, x| {
        catch_unwind(AssertUnwindSafe(|| f(i, x))).map_err(|payload| {
            crate::supervise::Failure::panic(
                crate::supervise::panic_message(payload.as_ref()),
                format!("{site}[{i}]"),
            )
        })
    })
}

/// Like [`par_map`] but for fallible item functions: returns the first
/// error by item order, or all results.
pub fn try_par_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let results = par_map(threads, items, f);
    results.into_iter().collect()
}

enum Job {
    Run(Box<dyn FnOnce() + Send + 'static>),
    Shutdown,
}

/// A small persistent thread pool fed by an mpsc channel.
///
/// Jobs are `'static` fire-and-forget closures; a panicking job is caught
/// inside the worker (the worker survives and keeps draining the queue)
/// and counted in [`ThreadPool::panicked_jobs`]. Dropping the pool sends
/// one shutdown message per worker and joins them — pending jobs finish
/// first, and shutdown completes even when jobs panicked.
pub struct ThreadPool {
    sender: mpsc::Sender<Job>,
    workers: Vec<thread::JoinHandle<()>>,
    panicked: Arc<AtomicUsize>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let panicked = Arc::new(AtomicUsize::new(0));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let panicked = Arc::clone(&panicked);
                thread::spawn(move || loop {
                    // Hold the lock only while receiving, never while
                    // running a job.
                    let job = {
                        let rx = receiver.lock().expect("pool receiver poisoned");
                        rx.recv()
                    };
                    match job {
                        Ok(Job::Run(job)) => {
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                panicked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(Job::Shutdown) | Err(_) => break,
                    }
                })
            })
            .collect();
        Self {
            sender,
            workers,
            panicked,
        }
    }

    /// Enqueues a job. Panics if the pool is shut down (impossible while
    /// the pool value is alive).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .send(Job::Run(Box::new(job)))
            .expect("thread pool has shut down");
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs that panicked so far.
    pub fn panicked_jobs(&self) -> usize {
        self.panicked.load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for _ in &self.workers {
            // Workers exit on Shutdown or on a closed channel; either way
            // the join below cannot deadlock.
            let _ = self.sender.send(Job::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map(threads, &items, |i, &v| {
                assert_eq!(i as u64, v);
                v * v
            });
            let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(8, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn par_map_actually_uses_multiple_threads() {
        let items: Vec<u32> = (0..64).collect();
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        par_map(4, &items, |_, _| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            thread::sleep(Duration::from_millis(2));
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "no overlap observed across 64 sleeping items"
        );
    }

    #[test]
    fn par_map_propagates_panics_without_deadlock() {
        let items: Vec<u32> = (0..32).collect();
        let executed = Arc::new(AtomicU64::new(0));
        let executed_in = Arc::clone(&executed);
        let result = std::panic::catch_unwind(move || {
            par_map(4, &items, |i, _| {
                executed_in.fetch_add(1, Ordering::Relaxed);
                if i == 5 {
                    panic!("item 5 exploded");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .unwrap_or_default();
        assert!(msg.contains("item 5 exploded"), "payload: {msg}");
        // The panic did not stop the cursor: every item was claimed.
        assert_eq!(executed.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn par_map_supervised_preserves_other_results_on_panic() {
        let items: Vec<u32> = (0..32).collect();
        for threads in [1, 4] {
            let out = par_map_supervised(threads, &items, "square", |i, &v| {
                if i == 5 || i == 20 {
                    panic!("item {i} exploded");
                }
                v * v
            });
            assert_eq!(out.len(), 32, "threads={threads}");
            for (i, slot) in out.iter().enumerate() {
                match slot {
                    Ok(v) => {
                        assert!(i != 5 && i != 20);
                        assert_eq!(*v, (i * i) as u32);
                    }
                    Err(fail) => {
                        assert!(i == 5 || i == 20, "unexpected failure at {i}");
                        assert_eq!(fail.kind(), "panic");
                        assert!(fail.message().contains(&format!("item {i} exploded")));
                        assert!(fail.to_string().contains(&format!("square[{i}]")), "{fail}");
                    }
                }
            }
        }
    }

    #[test]
    fn try_par_map_returns_first_error_by_index() {
        let items: Vec<u32> = (0..100).collect();
        let r: Result<Vec<u32>, String> = try_par_map(4, &items, |i, &v| {
            if i == 41 || i == 97 {
                Err(format!("bad {i}"))
            } else {
                Ok(v)
            }
        });
        assert_eq!(r.unwrap_err(), "bad 41");
    }

    #[test]
    fn pool_runs_jobs_and_shuts_down() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(3);
            assert_eq!(pool.threads(), 3);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop waits for the queue to drain.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pool_survives_panicking_jobs_and_never_deadlocks_on_drop() {
        let done = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for i in 0..20 {
                let done = Arc::clone(&done);
                pool.submit(move || {
                    if i % 3 == 0 {
                        panic!("job {i} panicked");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Give the workers a moment so the panic counter below is
            // meaningful even if drop is instant.
            thread::sleep(Duration::from_millis(20));
            assert!(pool.panicked_jobs() > 0, "panics must be observed");
        } // drop: must join cleanly despite panicked jobs
        assert_eq!(done.load(Ordering::Relaxed), 13, "non-panicking jobs ran");
    }

    #[test]
    fn poolstats_collects_when_enabled() {
        // Global counters: other tests in this binary may run par_map
        // concurrently, so assert growth, not exact totals.
        poolstats::enable();
        let before = poolstats::snapshot();
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(4, &items, |_, &v| {
            thread::sleep(Duration::from_micros(200));
            v + 1
        });
        assert_eq!(out.len(), 64);
        let after = poolstats::snapshot();
        assert!(after.tasks >= before.tasks + 64, "tasks counted");
        assert!(after.par_calls > before.par_calls, "call counted");
        assert!(after.workers >= before.workers + 4, "workers counted");
        assert!(after.busy_ns > before.busy_ns, "busy time accrues");
        // Sequential path counts tasks too.
        let seq_before = poolstats::snapshot();
        par_map(1, &items, |_, &v| v);
        assert!(poolstats::snapshot().tasks >= seq_before.tasks + 64);
    }

    #[test]
    fn parallelism_config_defaults() {
        assert_eq!(Parallelism::single().threads, 1);
        assert_eq!(Parallelism::with_threads(0).threads, 1);
        assert!(Parallelism::default().threads >= 1);
        assert_eq!(Parallelism::default().seed, 42);
    }
}
