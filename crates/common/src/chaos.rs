//! Deterministic chaos injection: the framework testing itself.
//!
//! Robustness claims need evidence. This module plants named
//! instrumentation sites ([`point`]) in the optimizer's memo loop, the
//! executor's batch loop, and the cache I/O path, and drives them from a
//! deterministic fault plan ([`ChaosPlan`]): a seeded or hand-written
//! schedule that injects panics, simulated stalls (deadline-expiry
//! errors), and budget pressure at exact site hit counts. The
//! supervision layer must catch every injected fault, attribute it in
//! telemetry, and quarantine the poisoned input — and because the plan
//! is a pure function of `(seed | spec, site hit index)`, a failing run
//! replays exactly.
//!
//! Injection is process-global (installed from `--chaos-seed` /
//! `--chaos-plan`) and off by default: a disabled [`point`] is one
//! relaxed atomic load.

use crate::error::{Error, Result};
use crate::rng::Rng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The named instrumentation sites compiled into the workspace. A plan
/// may only reference these (typos in `--chaos-plan` fail fast instead
/// of silently never firing).
pub const SITES: [&str; 4] = ["memo.insert", "exec.batch", "cache.load", "cache.save"];

/// What a chaos rule injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site — exercises the `catch_unwind` sandbox.
    Panic,
    /// A simulated stall: the site returns `Error::Timeout` as if a
    /// cooperative deadline had expired there. Simulation (rather than
    /// sleeping) keeps chaos runs fast and bit-deterministic.
    Stall,
    /// Budget pressure: the site returns `Error::Budget`.
    Budget,
}

impl FaultKind {
    pub const ALL: [FaultKind; 3] = [FaultKind::Panic, FaultKind::Stall, FaultKind::Budget];

    /// Stable name used in plan specs and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::Budget => "budget",
        }
    }

    pub fn from_name(name: &str) -> Result<FaultKind> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                Error::unsupported(format!(
                    "unknown chaos fault kind '{name}' (known: panic, stall, budget)"
                ))
            })
    }
}

/// FNV-1a 64 — stable across processes, used to derive per-site RNG
/// streams so seeded plans don't depend on site declaration order.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One schedule entry: inject `kind` at `site` on every `every`-th hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRule {
    pub site: String,
    pub kind: FaultKind,
    /// Fire on hits `every, 2*every, 3*every, ...` (1-based hit count).
    pub every: u64,
    /// Total injections this rule may perform (0 = unlimited). A bounded
    /// rule lets a campaign absorb a fault storm and then finish: once
    /// the budget is spent the site behaves normally again.
    pub times: u64,
}

/// A deterministic fault schedule over the known [`SITES`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    /// The seed the plan was derived from (0 for hand-written specs).
    pub seed: u64,
    pub rules: Vec<SiteRule>,
}

impl ChaosPlan {
    /// Parses a hand-written spec: comma-separated `site:kind@every`
    /// entries with an optional `#times` injection cap, e.g.
    /// `memo.insert:panic@3,exec.batch:stall@5#2`.
    pub fn parse(spec: &str) -> Result<ChaosPlan> {
        let mut rules = Vec::new();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (site, rest) = entry.split_once(':').ok_or_else(|| {
                Error::parse(format!("chaos entry '{entry}': expected site:kind@every"))
            })?;
            let (kind, sched) = rest.split_once('@').ok_or_else(|| {
                Error::parse(format!("chaos entry '{entry}': expected site:kind@every"))
            })?;
            if !SITES.contains(&site) {
                return Err(Error::unsupported(format!(
                    "unknown chaos site '{site}' (known: {})",
                    SITES.join(", ")
                )));
            }
            let (every, times) = match sched.split_once('#') {
                Some((e, t)) => {
                    let times: u64 = t.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        Error::parse(format!("chaos entry '{entry}': bad injection cap '{t}'"))
                    })?;
                    (e, times)
                }
                None => (sched, 0),
            };
            let every: u64 = every.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                Error::parse(format!("chaos entry '{entry}': bad period '{every}'"))
            })?;
            rules.push(SiteRule {
                site: site.to_string(),
                kind: FaultKind::from_name(kind)?,
                every,
                times,
            });
        }
        Ok(ChaosPlan { seed: 0, rules })
    }

    /// Derives a plan from a seed: each site gets one rule whose kind and
    /// period are a pure function of `(seed, site)`. Cache sites never
    /// get `panic` (a panic inside lazy shard loading would poison the
    /// shard mutex and cascade); they degrade via stall/budget instead.
    pub fn seeded(seed: u64) -> ChaosPlan {
        let mut rules = Vec::new();
        for site in SITES {
            let mut rng = Rng::new(seed ^ fnv1a(site.as_bytes()));
            let kinds: &[FaultKind] = if site.starts_with("cache.") {
                &[FaultKind::Stall, FaultKind::Budget]
            } else {
                &FaultKind::ALL
            };
            let kind = kinds[(rng.next_u64() % kinds.len() as u64) as usize];
            let every = 2 + rng.next_u64() % 8; // period in 2..=9
                                                // Seeded plans are bounded (1..=3 injections per site) so a
                                                // supervised campaign converges instead of re-hitting the
                                                // same fault forever on retried or subsequent stages.
            let times = 1 + rng.next_u64() % 3;
            rules.push(SiteRule {
                site: site.to_string(),
                kind,
                every,
                times,
            });
        }
        ChaosPlan { seed, rules }
    }

    /// Renders the plan back to spec syntax (logging / replay).
    pub fn to_spec(&self) -> String {
        self.rules
            .iter()
            .map(|r| {
                if r.times > 0 {
                    format!("{}:{}@{}#{}", r.site, r.kind.name(), r.every, r.times)
                } else {
                    format!("{}:{}@{}", r.site, r.kind.name(), r.every)
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Counts of injected faults since the plan was installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    pub panics: u64,
    pub stalls: u64,
    pub budgets: u64,
}

impl ChaosStats {
    pub fn total(&self) -> u64 {
        self.panics + self.stalls + self.budgets
    }
}

struct Active {
    plan: ChaosPlan,
    /// Per-rule hit counters (parallel to `plan.rules`).
    hits: Vec<AtomicU64>,
    /// Per-rule injection counters (parallel to `plan.rules`) enforcing
    /// each rule's `times` cap.
    fired: Vec<AtomicU64>,
    injected: [AtomicU64; 3],
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Arc<Active>>> = RwLock::new(None);

/// Installs `plan` process-wide, resetting hit counters and stats.
pub fn install(plan: ChaosPlan) {
    let active = Arc::new(Active {
        hits: plan.rules.iter().map(|_| AtomicU64::new(0)).collect(),
        fired: plan.rules.iter().map(|_| AtomicU64::new(0)).collect(),
        injected: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        plan,
    });
    *ACTIVE.write().expect("chaos plan lock poisoned") = Some(active);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the installed plan; [`point`] returns to its one-load path.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    *ACTIVE.write().expect("chaos plan lock poisoned") = None;
}

/// True when a plan is installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// The installed plan, if any (for logging / report sections).
pub fn installed() -> Option<ChaosPlan> {
    ACTIVE
        .read()
        .expect("chaos plan lock poisoned")
        .as_ref()
        .map(|a| a.plan.clone())
}

/// Injected-fault counts since [`install`].
pub fn stats() -> ChaosStats {
    match ACTIVE.read().expect("chaos plan lock poisoned").as_ref() {
        Some(a) => ChaosStats {
            panics: a.injected[0].load(Ordering::Relaxed),
            stalls: a.injected[1].load(Ordering::Relaxed),
            budgets: a.injected[2].load(Ordering::Relaxed),
        },
        None => ChaosStats::default(),
    }
}

/// Total hits recorded at `site` by the installed plan (the maximum over
/// that site's per-rule counters — every rule counts every hit). 0 with
/// no plan, or when no rule references the site. A calibration aid: a
/// test that must land a fault in a specific stage installs a plan with a
/// never-firing sentinel rule, measures the hits consumed by the stages
/// before the target, and aims `every` just past them.
pub fn site_hits(site: &str) -> u64 {
    match ACTIVE.read().expect("chaos plan lock poisoned").as_ref() {
        Some(a) => a
            .plan
            .rules
            .iter()
            .zip(&a.hits)
            .filter(|(r, _)| r.site == site)
            .map(|(_, h)| h.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0),
        None => 0,
    }
}

/// A named instrumentation site. With no plan installed this is one
/// relaxed load. With a plan, the site's hit counter advances and the
/// matching rule may fire: `panic` unwinds (to be caught by the
/// supervision sandbox), `stall` returns `Error::Timeout`, `budget`
/// returns `Error::Budget`.
#[inline]
pub fn point(site: &str) -> Result<()> {
    if !ENABLED.load(Ordering::Acquire) {
        return Ok(());
    }
    point_slow(site)
}

#[cold]
fn point_slow(site: &str) -> Result<()> {
    let guard = ACTIVE.read().expect("chaos plan lock poisoned");
    let Some(active) = guard.as_ref() else {
        return Ok(());
    };
    for ((rule, hits), fired) in active
        .plan
        .rules
        .iter()
        .zip(&active.hits)
        .zip(&active.fired)
    {
        if rule.site != site {
            continue;
        }
        let hit = hits.fetch_add(1, Ordering::Relaxed) + 1;
        if hit % rule.every != 0 {
            continue;
        }
        if rule.times > 0 && fired.fetch_add(1, Ordering::Relaxed) >= rule.times {
            continue; // injection cap spent: site behaves normally again
        }
        let slot = match rule.kind {
            FaultKind::Panic => 0,
            FaultKind::Stall => 1,
            FaultKind::Budget => 2,
        };
        active.injected[slot].fetch_add(1, Ordering::Relaxed);
        match rule.kind {
            FaultKind::Panic => {
                // Drop the read guard before unwinding so the sandbox
                // that catches this panic leaves the lock unpoisoned.
                drop(guard);
                panic!("chaos: injected panic at {site} (hit {hit})");
            }
            FaultKind::Stall => {
                return Err(Error::timeout(format!(
                    "chaos: injected stall at {site} (hit {hit})"
                )))
            }
            FaultKind::Budget => {
                return Err(Error::budget(format!(
                    "chaos: injected budget pressure at {site} (hit {hit})"
                )))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Chaos state is process-global; tests in this module serialize on
    /// this lock so cargo's parallel test threads don't interleave plans.
    static CHAOS_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        CHAOS_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn spec_round_trips_and_rejects_garbage() {
        let plan = ChaosPlan::parse("memo.insert:panic@3, exec.batch:stall@5#2").unwrap();
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].times, 0, "no cap means unlimited");
        assert_eq!(plan.rules[1].times, 2);
        assert_eq!(plan.to_spec(), "memo.insert:panic@3,exec.batch:stall@5#2");
        assert_eq!(ChaosPlan::parse(&plan.to_spec()).unwrap(), plan);
        assert!(ChaosPlan::parse("").unwrap().rules.is_empty());
        for bad in [
            "memo.insert",
            "memo.insert:panic",
            "memo.insert:explode@3",
            "no.such.site:panic@3",
            "memo.insert:panic@0",
            "memo.insert:panic@x",
            "memo.insert:panic@3#0",
            "memo.insert:panic@3#x",
        ] {
            assert!(ChaosPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_every_site() {
        let a = ChaosPlan::seeded(7);
        let b = ChaosPlan::seeded(7);
        assert_eq!(a, b);
        assert_ne!(a, ChaosPlan::seeded(8));
        assert_eq!(a.rules.len(), SITES.len());
        for (rule, site) in a.rules.iter().zip(SITES) {
            assert_eq!(rule.site, site);
            assert!(rule.every >= 2 && rule.every <= 9);
            assert!(
                rule.times >= 1 && rule.times <= 3,
                "seeded rules must be bounded so campaigns converge"
            );
            if site.starts_with("cache.") {
                assert_ne!(rule.kind, FaultKind::Panic, "cache sites must not panic");
            }
        }
    }

    #[test]
    fn injection_cap_exhausts_and_the_site_recovers() {
        let _guard = locked();
        install(ChaosPlan::parse("exec.batch:stall@2#2").unwrap());
        // Fires on hits 2 and 4, then the cap is spent: hits 6, 8, ...
        // pass even though they match the period.
        let outcomes: Vec<bool> = (0..10).map(|_| point("exec.batch").is_err()).collect();
        assert_eq!(
            outcomes,
            [false, true, false, true, false, false, false, false, false, false]
        );
        assert_eq!(stats().stalls, 2);
        clear();
    }

    #[test]
    fn disabled_points_are_noops() {
        let _guard = locked();
        clear();
        assert!(!enabled());
        for site in SITES {
            point(site).unwrap();
        }
        assert_eq!(stats(), ChaosStats::default());
    }

    #[test]
    fn installed_plan_fires_at_exact_hit_counts() {
        let _guard = locked();
        install(ChaosPlan::parse("exec.batch:stall@3,memo.insert:budget@2").unwrap());
        // exec.batch fires on hits 3 and 6.
        let outcomes: Vec<bool> = (0..6).map(|_| point("exec.batch").is_err()).collect();
        assert_eq!(outcomes, [false, false, true, false, false, true]);
        assert!(matches!(
            point("memo.insert").and(point("memo.insert")),
            Err(Error::Budget(_))
        ));
        // Sites with no rule never fire.
        for _ in 0..10 {
            point("cache.load").unwrap();
        }
        let s = stats();
        assert_eq!((s.stalls, s.budgets, s.panics), (2, 1, 0));
        assert_eq!(s.total(), 3);
        clear();
    }

    #[test]
    fn injected_panics_unwind_with_site_in_the_message() {
        let _guard = locked();
        install(ChaosPlan::parse("memo.insert:panic@1").unwrap());
        let caught = std::panic::catch_unwind(|| point("memo.insert"));
        let payload = caught.expect_err("panic kind must unwind");
        let msg = crate::supervise::panic_message(payload.as_ref());
        assert!(msg.contains("memo.insert"), "{msg}");
        assert_eq!(stats().panics, 1);
        // The read lock was released before unwinding: chaos stays usable.
        clear();
        point("memo.insert").unwrap();
    }

    #[test]
    fn replay_is_identical_for_the_same_plan() {
        let _guard = locked();
        let run = || {
            install(ChaosPlan::seeded(99));
            let fired: Vec<bool> = (0..40)
                .map(|i| {
                    let site = SITES[i % SITES.len()];
                    std::panic::catch_unwind(|| point(site))
                        .map(|r| r.is_err())
                        .unwrap_or(true)
                })
                .collect();
            let s = stats();
            clear();
            (fired, s)
        };
        assert_eq!(run(), run());
    }
}
