//! Logical relational operator trees.
//!
//! A [`LogicalTree`] is the "logical query tree" of the paper (§2.2,
//! Figure 1): a tree of logical relational operators, each instantiated
//! with its arguments. The optimizer's memo stores the same [`Operator`]
//! payloads with children abstracted into groups, so transformation rules
//! are written once against [`Operator`].

pub mod op;
pub mod schema;
pub mod tree;

pub use op::{JoinKind, OpKind, Operator, SortKey};
pub use schema::{derive_schema, output_schema, ColumnInfo, Schema};
pub use tree::{IdGen, LogicalTree};
