//! Standalone logical query trees and tree utilities.

use crate::op::{JoinKind, Operator, SortKey};
use ruletest_common::{ColId, TableId};
use ruletest_expr::{AggCall, Expr};
use std::fmt;

/// Allocator for fresh column ids within one query.
#[derive(Debug, Clone, Default)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts allocating above every id already used in `tree` — needed when
    /// transforming a tree whose ids were minted elsewhere (e.g. parsed SQL).
    pub fn above(tree: &LogicalTree) -> Self {
        let mut max = 0u32;
        tree.visit(&mut |n| {
            let bump = |max: &mut u32, id: ColId| *max = (*max).max(id.0 + 1);
            match &n.op {
                Operator::Get { cols, .. } => cols.iter().for_each(|&c| bump(&mut max, c)),
                Operator::Project { outputs } => {
                    outputs.iter().for_each(|(c, _)| bump(&mut max, *c))
                }
                Operator::GbAgg { aggs, .. } => aggs.iter().for_each(|a| bump(&mut max, a.output)),
                Operator::UnionAll { outputs, .. } => {
                    outputs.iter().for_each(|&c| bump(&mut max, c))
                }
                _ => {}
            }
        });
        Self { next: max }
    }

    /// The id the next call to [`IdGen::fresh`] would return.
    pub fn peek_next(&self) -> u32 {
        self.next
    }

    /// Mints a fresh column id.
    pub fn fresh(&mut self) -> ColId {
        let id = ColId(self.next);
        self.next += 1;
        id
    }

    /// Mints `n` fresh column ids.
    pub fn fresh_n(&mut self, n: usize) -> Vec<ColId> {
        (0..n).map(|_| self.fresh()).collect()
    }
}

/// A logical query tree: an operator with owned children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicalTree {
    pub op: Operator,
    pub children: Vec<LogicalTree>,
}

impl LogicalTree {
    pub fn new(op: Operator, children: Vec<LogicalTree>) -> Self {
        debug_assert_eq!(
            op.arity(),
            children.len(),
            "arity mismatch for {}",
            op.label()
        );
        Self { op, children }
    }

    /// Base-table access with fresh column ids.
    pub fn get(def: &ruletest_storage::TableDef, ids: &mut IdGen) -> Self {
        LogicalTree::new(
            Operator::Get {
                table: def.id,
                cols: ids.fresh_n(def.columns.len()),
            },
            vec![],
        )
    }

    /// Base-table access with explicit column ids.
    pub fn get_with_cols(table: TableId, cols: Vec<ColId>) -> Self {
        LogicalTree::new(Operator::Get { table, cols }, vec![])
    }

    pub fn select(input: LogicalTree, predicate: Expr) -> Self {
        LogicalTree::new(Operator::Select { predicate }, vec![input])
    }

    pub fn project(input: LogicalTree, outputs: Vec<(ColId, Expr)>) -> Self {
        LogicalTree::new(Operator::Project { outputs }, vec![input])
    }

    pub fn join(kind: JoinKind, left: LogicalTree, right: LogicalTree, predicate: Expr) -> Self {
        LogicalTree::new(Operator::Join { kind, predicate }, vec![left, right])
    }

    pub fn gbagg(input: LogicalTree, group_by: Vec<ColId>, aggs: Vec<AggCall>) -> Self {
        LogicalTree::new(Operator::GbAgg { group_by, aggs }, vec![input])
    }

    /// Bag union with explicit side-column maps.
    pub fn union_all(
        left: LogicalTree,
        right: LogicalTree,
        outputs: Vec<ColId>,
        left_cols: Vec<ColId>,
        right_cols: Vec<ColId>,
    ) -> Self {
        LogicalTree::new(
            Operator::UnionAll {
                outputs,
                left_cols,
                right_cols,
            },
            vec![left, right],
        )
    }

    pub fn distinct(input: LogicalTree) -> Self {
        LogicalTree::new(Operator::Distinct, vec![input])
    }

    pub fn sort(input: LogicalTree, keys: Vec<SortKey>) -> Self {
        LogicalTree::new(Operator::Sort { keys }, vec![input])
    }

    pub fn top(input: LogicalTree, n: u64, keys: Vec<SortKey>) -> Self {
        LogicalTree::new(Operator::Top { n, keys }, vec![input])
    }

    /// Number of operators in the tree — the paper's "number of logical
    /// operators" metric for generated query complexity (§2.3).
    pub fn op_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LogicalTree::op_count)
            .sum::<usize>()
    }

    /// Pre-order visit.
    pub fn visit(&self, f: &mut impl FnMut(&LogicalTree)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// The node at `path` (child indices from the root; `[]` is the root
    /// itself), or `None` if the path walks off the tree.
    pub fn at(&self, path: &[usize]) -> Option<&LogicalTree> {
        let mut node = self;
        for &i in path {
            node = node.children.get(i)?;
        }
        Some(node)
    }

    /// A copy of the tree with the node at `path` replaced by `subtree`.
    /// Returns `None` if the path walks off the tree. The result is *not*
    /// re-validated — callers (e.g. the triage minimizer) must check it
    /// with `derive_schema` before use.
    pub fn replace_at(&self, path: &[usize], subtree: &LogicalTree) -> Option<LogicalTree> {
        match path {
            [] => Some(subtree.clone()),
            [i, rest @ ..] => {
                let mut out = self.clone();
                let child = out.children.get_mut(*i)?;
                *child = child.replace_at(rest, subtree)?;
                Some(out)
            }
        }
    }

    /// Pre-order paths of every node, roots first — the candidate
    /// enumeration order for tree shrinking.
    pub fn paths(&self) -> Vec<Vec<usize>> {
        fn go(node: &LogicalTree, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            out.push(prefix.clone());
            for (i, c) in node.children.iter().enumerate() {
                prefix.push(i);
                go(c, prefix, out);
                prefix.pop();
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// All base tables referenced (with duplicates for self-joins).
    pub fn tables(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        self.visit(&mut |n| {
            if let Operator::Get { table, .. } = &n.op {
                out.push(*table);
            }
        });
        out
    }

    /// For `Get` nodes: the minted id of the `ordinal`-th table column.
    /// Panics if this is not a `Get` or the ordinal is out of range.
    pub fn output_col(&self, ordinal: usize) -> ColId {
        match self.try_output_col(ordinal) {
            Some(c) => c,
            None => panic!("output_col on non-Get operator {}", self.op.label()),
        }
    }

    /// Total variant of [`Self::output_col`]: `None` for non-`Get`
    /// operators and out-of-range ordinals, so sandboxed callers (the
    /// lint auditor, the symbolic prover) never abort the process.
    pub fn try_output_col(&self, ordinal: usize) -> Option<ColId> {
        match &self.op {
            Operator::Get { cols, .. } => cols.get(ordinal).copied(),
            _ => None,
        }
    }

    /// Indented EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        fn go(node: &LogicalTree, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&node.op.label());
            out.push('\n');
            for c in &node.children {
                go(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

impl fmt::Display for LogicalTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_storage::tpch_catalog;

    fn sample() -> (LogicalTree, IdGen) {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let l = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        let r = LogicalTree::get(cat.table_by_name("nation").unwrap(), &mut ids);
        let pred = Expr::eq(Expr::col(l.output_col(0)), Expr::col(r.output_col(2)));
        let join = LogicalTree::join(JoinKind::Inner, l, r, pred);
        (LogicalTree::select(join, Expr::true_lit()), ids)
    }

    #[test]
    fn op_count_counts_all_nodes() {
        let (t, _) = sample();
        assert_eq!(t.op_count(), 4);
    }

    #[test]
    fn tables_lists_duplicates() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let a = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        let b = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        let t = LogicalTree::join(JoinKind::Inner, a, b, Expr::true_lit());
        assert_eq!(t.tables(), vec![TableId(0), TableId(0)]);
    }

    #[test]
    fn fresh_ids_are_distinct_even_for_self_joins() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let a = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        let b = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        assert_ne!(a.output_col(0), b.output_col(0));
    }

    #[test]
    fn idgen_above_resumes_past_existing_ids() {
        let (t, _) = sample();
        let mut ids = IdGen::above(&t);
        let fresh = ids.fresh();
        t.visit(&mut |n| {
            if let Operator::Get { cols, .. } = &n.op {
                assert!(cols.iter().all(|c| c.0 < fresh.0));
            }
        });
    }

    #[test]
    fn path_navigation_and_replacement() {
        let (t, _) = sample(); // Select -> Join -> (Get, Get)
        assert_eq!(t.at(&[]).unwrap().op_count(), 4);
        assert!(matches!(t.at(&[0]).unwrap().op, Operator::Join { .. }));
        assert!(matches!(t.at(&[0, 1]).unwrap().op, Operator::Get { .. }));
        assert!(t.at(&[0, 2]).is_none());
        assert!(t.at(&[1]).is_none());

        // Replace the whole Select with its Join child: drops one node.
        let join = t.at(&[0]).unwrap().clone();
        let smaller = t.replace_at(&[], &join).unwrap();
        assert_eq!(smaller.op_count(), 3);
        // Replace the Join with its left Get: Select directly over Get.
        let left = t.at(&[0, 0]).unwrap().clone();
        let promoted = t.replace_at(&[0], &left).unwrap();
        assert_eq!(promoted.op_count(), 2);
        assert!(matches!(promoted.children[0].op, Operator::Get { .. }));
        assert!(t.replace_at(&[2], &join).is_none());

        let paths = t.paths();
        assert_eq!(paths.len(), t.op_count());
        assert_eq!(paths[0], Vec::<usize>::new());
        assert_eq!(paths[1], vec![0]);
        assert_eq!(paths[2], vec![0, 0]);
        assert_eq!(paths[3], vec![0, 1]);
    }

    #[test]
    fn explain_is_indented() {
        let (t, _) = sample();
        let text = t.explain();
        assert!(text.starts_with("Select"));
        assert!(text.contains("\n  INNER JOIN"));
        assert!(text.contains("\n    Get(T0)"));
    }

    #[test]
    fn visit_preorder() {
        let (t, _) = sample();
        let mut labels = Vec::new();
        t.visit(&mut |n| labels.push(n.op.kind()));
        assert_eq!(labels[0], crate::op::OpKind::Select);
        assert_eq!(labels[1], crate::op::OpKind::Join);
    }

    #[test]
    #[should_panic(expected = "output_col on non-Get")]
    fn output_col_requires_get() {
        let (t, _) = sample();
        let _ = t.output_col(0);
    }
}
