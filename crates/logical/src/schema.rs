//! Output-schema derivation and validation for logical operators.
//!
//! Deriving a schema doubles as semantic validation: unknown column
//! references, type errors, arity mismatches, and duplicate output ids are
//! all rejected here. Both the standalone tree and the optimizer memo call
//! [`output_schema`]; the memo caches one schema per group (all expressions
//! in a group share it — a logical property of equivalence).

use crate::op::{JoinKind, Operator};
use crate::tree::LogicalTree;
use ruletest_common::{ColId, DataType, Error, Result};
use ruletest_expr::{infer_type, AggFunc};
use ruletest_storage::Catalog;
use std::collections::BTreeSet;

/// One output column of an operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnInfo {
    pub id: ColId,
    pub data_type: DataType,
    pub nullable: bool,
}

/// An ordered output schema.
pub type Schema = Vec<ColumnInfo>;

fn find(schema: &Schema, id: ColId) -> Option<&ColumnInfo> {
    schema.iter().find(|c| c.id == id)
}

fn type_resolver<'a>(schemas: &'a [&Schema]) -> impl Fn(ColId) -> Option<DataType> + 'a {
    move |id| {
        schemas
            .iter()
            .find_map(|s| find(s, id).map(|c| c.data_type))
    }
}

fn check_predicate(predicate: &ruletest_expr::Expr, schemas: &[&Schema]) -> Result<()> {
    let t = infer_type(predicate, &type_resolver(schemas))?;
    match t {
        None | Some(DataType::Bool) => Ok(()),
        Some(other) => Err(Error::invalid(format!(
            "predicate has type {other}, expected BOOLEAN"
        ))),
    }
}

fn no_duplicate_ids(schema: &Schema) -> Result<()> {
    let mut seen = BTreeSet::new();
    for c in schema {
        if !seen.insert(c.id) {
            return Err(Error::invalid(format!("duplicate output column {}", c.id)));
        }
    }
    Ok(())
}

/// Derives the output schema of `op` given its children's schemas,
/// validating arguments along the way.
pub fn output_schema(catalog: &Catalog, op: &Operator, children: &[&Schema]) -> Result<Schema> {
    if children.len() != op.arity() {
        return Err(Error::invalid(format!(
            "{} expects {} children, got {}",
            op.label(),
            op.arity(),
            children.len()
        )));
    }
    let schema = match op {
        Operator::Get { table, cols } => {
            let def = catalog.table(*table)?;
            if cols.len() != def.columns.len() {
                return Err(Error::invalid(format!(
                    "Get({}) instantiates {} column ids, table has {}",
                    def.name,
                    cols.len(),
                    def.columns.len()
                )));
            }
            cols.iter()
                .zip(&def.columns)
                .map(|(&id, cd)| ColumnInfo {
                    id,
                    data_type: cd.data_type,
                    nullable: cd.nullable,
                })
                .collect()
        }
        Operator::Select { predicate } => {
            check_predicate(predicate, children)?;
            children[0].clone()
        }
        Operator::Project { outputs } => {
            let resolver = type_resolver(children);
            let input = children[0];
            let mut out = Schema::with_capacity(outputs.len());
            for (id, expr) in outputs {
                let t = infer_type(expr, &resolver)?
                    .ok_or_else(|| Error::invalid("projection of untyped NULL literal"))?;
                // Nullability: conservative — nullable unless a bare
                // reference to a non-nullable input column.
                let nullable = match expr {
                    ruletest_expr::Expr::Col(c) => {
                        find(input, *c).map(|ci| ci.nullable).unwrap_or(true)
                    }
                    ruletest_expr::Expr::Lit(v) => v.is_null(),
                    _ => true,
                };
                out.push(ColumnInfo {
                    id: *id,
                    data_type: t,
                    nullable,
                });
            }
            out
        }
        Operator::Join { kind, predicate } => {
            check_predicate(predicate, children)?;
            let (left, right) = (children[0], children[1]);
            match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => left.clone(),
                _ => {
                    let null_left = kind.preserves_right(); // unmatched right pads left
                    let null_right = kind.preserves_left();
                    let mut out = Schema::with_capacity(left.len() + right.len());
                    for c in left {
                        out.push(ColumnInfo {
                            nullable: c.nullable || null_left,
                            ..c.clone()
                        });
                    }
                    for c in right {
                        out.push(ColumnInfo {
                            nullable: c.nullable || null_right,
                            ..c.clone()
                        });
                    }
                    out
                }
            }
        }
        Operator::GbAgg { group_by, aggs } => {
            let input = children[0];
            let mut out = Schema::with_capacity(group_by.len() + aggs.len());
            for &g in group_by {
                let ci = find(input, g)
                    .ok_or_else(|| Error::invalid(format!("unknown grouping column {g}")))?;
                out.push(ci.clone());
            }
            for call in aggs {
                let arg_type = match call.arg {
                    Some(a) => Some(
                        find(input, a)
                            .ok_or_else(|| {
                                Error::invalid(format!("unknown aggregate argument {a}"))
                            })?
                            .data_type,
                    ),
                    None => None,
                };
                if call.func == AggFunc::Sum && arg_type != Some(DataType::Int) {
                    return Err(Error::invalid("SUM requires an INT argument"));
                }
                let nullable = !matches!(call.func, AggFunc::Count | AggFunc::CountStar);
                out.push(ColumnInfo {
                    id: call.output,
                    data_type: call.func.output_type(arg_type),
                    nullable,
                });
            }
            out
        }
        Operator::UnionAll {
            outputs,
            left_cols,
            right_cols,
        } => {
            let (left, right) = (children[0], children[1]);
            if outputs.len() != left_cols.len() || outputs.len() != right_cols.len() {
                return Err(Error::invalid(format!(
                    "UNION ALL arity mismatch: {} outputs vs {}/{} side columns",
                    outputs.len(),
                    left_cols.len(),
                    right_cols.len()
                )));
            }
            let mut out = Schema::with_capacity(outputs.len());
            for (i, &id) in outputs.iter().enumerate() {
                let lc = find(left, left_cols[i]).ok_or_else(|| {
                    Error::invalid(format!("UNION ALL: unknown left column {}", left_cols[i]))
                })?;
                let rc = find(right, right_cols[i]).ok_or_else(|| {
                    Error::invalid(format!("UNION ALL: unknown right column {}", right_cols[i]))
                })?;
                if lc.data_type != rc.data_type {
                    return Err(Error::invalid(format!(
                        "UNION ALL type mismatch at position {i}: {} vs {}",
                        lc.data_type, rc.data_type
                    )));
                }
                out.push(ColumnInfo {
                    id,
                    data_type: lc.data_type,
                    nullable: lc.nullable || rc.nullable,
                });
            }
            out
        }
        Operator::Distinct => children[0].clone(),
        Operator::Sort { keys } | Operator::Top { keys, .. } => {
            for k in keys {
                if find(children[0], k.col).is_none() {
                    return Err(Error::invalid(format!("unknown sort column {}", k.col)));
                }
            }
            children[0].clone()
        }
    };
    no_duplicate_ids(&schema)?;
    // All predicate/argument columns must come from the children.
    Ok(schema)
}

/// Recursively derives (and thereby validates) the schema of a whole tree.
pub fn derive_schema(catalog: &Catalog, tree: &LogicalTree) -> Result<Schema> {
    let child_schemas: Vec<Schema> = tree
        .children
        .iter()
        .map(|c| derive_schema(catalog, c))
        .collect::<Result<_>>()?;
    let refs: Vec<&Schema> = child_schemas.iter().collect();
    output_schema(catalog, &tree.op, &refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{IdGen, LogicalTree};
    use ruletest_common::TableId;
    use ruletest_expr::{AggCall, Expr};
    use ruletest_storage::tpch_catalog;

    fn get(catalog: &Catalog, name: &str, ids: &mut IdGen) -> LogicalTree {
        let def = catalog.table_by_name(name).unwrap();
        LogicalTree::get(def, ids)
    }

    #[test]
    fn get_schema_matches_catalog() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let t = get(&cat, "region", &mut ids);
        let s = derive_schema(&cat, &t).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].data_type, DataType::Int);
        assert!(!s[0].nullable);
    }

    #[test]
    fn join_concatenates_and_outer_nullifies() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let l = get(&cat, "region", &mut ids);
        let r = get(&cat, "nation", &mut ids);
        let lk = l.output_col(0);
        let rk = r.output_col(2);
        let pred = Expr::eq(Expr::col(lk), Expr::col(rk));

        let inner = LogicalTree::join(JoinKind::Inner, l.clone(), r.clone(), pred.clone());
        let s = derive_schema(&cat, &inner).unwrap();
        assert_eq!(s.len(), 5);
        assert!(!s[0].nullable);

        let loj = LogicalTree::join(JoinKind::LeftOuter, l.clone(), r.clone(), pred.clone());
        let s = derive_schema(&cat, &loj).unwrap();
        assert!(!s[0].nullable, "preserved side stays non-null");
        assert!(s[2].nullable, "null-supplying side becomes nullable");

        let semi = LogicalTree::join(JoinKind::LeftSemi, l, r, pred);
        let s = derive_schema(&cat, &semi).unwrap();
        assert_eq!(s.len(), 2, "semi join emits only the left side");
    }

    #[test]
    fn full_and_right_outer_nullability() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let l = get(&cat, "region", &mut ids);
        let r = get(&cat, "nation", &mut ids);
        let pred = Expr::eq(Expr::col(l.output_col(0)), Expr::col(r.output_col(2)));

        // Full outer: unmatched rows pad BOTH sides, so every column of
        // both inputs must come out nullable.
        let foj = LogicalTree::join(JoinKind::FullOuter, l.clone(), r.clone(), pred.clone());
        let s = derive_schema(&cat, &foj).unwrap();
        assert_eq!(s.len(), 5);
        assert!(
            s.iter().all(|c| c.nullable),
            "full outer join must nullify every column of both sides"
        );

        // Right outer mirrors left outer: the left side is null-supplied.
        let roj = LogicalTree::join(JoinKind::RightOuter, l, r, pred);
        let s = derive_schema(&cat, &roj).unwrap();
        assert!(s[0].nullable, "null-supplied left side becomes nullable");
        assert!(!s[2].nullable, "preserved right side keeps its nullability");
    }

    #[test]
    fn anti_join_hides_right_side_and_keeps_left_nullability() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let l = get(&cat, "region", &mut ids);
        let r = get(&cat, "nation", &mut ids);
        let rk = r.output_col(2);
        let left_schema = derive_schema(&cat, &l).unwrap();
        let pred = Expr::eq(Expr::col(l.output_col(0)), Expr::col(rk));

        let anti = LogicalTree::join(JoinKind::LeftAnti, l, r, pred);
        let s = derive_schema(&cat, &anti).unwrap();
        assert_eq!(
            s, left_schema,
            "anti join passes the left schema through untouched"
        );
        assert!(
            s.iter().all(|c| c.id != rk),
            "right-side columns are invisible above a semi/anti join"
        );
    }

    #[test]
    fn select_requires_boolean_predicate_over_visible_columns() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let t = get(&cat, "region", &mut ids);
        let bad_type = LogicalTree::select(t.clone(), Expr::lit(5i64));
        assert!(derive_schema(&cat, &bad_type).is_err());
        let unknown = LogicalTree::select(t.clone(), Expr::col(ColId(999)));
        assert!(derive_schema(&cat, &unknown).is_err());
        let ok = LogicalTree::select(t, Expr::true_lit());
        assert!(derive_schema(&cat, &ok).is_ok());
    }

    #[test]
    fn gbagg_schema_and_count_nullability() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let t = get(&cat, "supplier", &mut ids);
        let nation = t.output_col(2);
        let acct = t.output_col(3);
        let cnt = ids.fresh();
        let mx = ids.fresh();
        let agg = LogicalTree::gbagg(
            t,
            vec![nation],
            vec![
                AggCall::new(AggFunc::CountStar, None, cnt),
                AggCall::new(AggFunc::Max, Some(acct), mx),
            ],
        );
        let s = derive_schema(&cat, &agg).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s[1].nullable, "COUNT is never NULL");
        assert!(s[2].nullable, "MAX over empty group is NULL");
    }

    #[test]
    fn union_all_checks_arity_and_types() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let a = get(&cat, "region", &mut ids);
        let b = get(&cat, "region", &mut ids);
        let (a0, a1) = (a.output_col(0), a.output_col(1));
        let (b0, b1) = (b.output_col(0), b.output_col(1));
        let outs = vec![ids.fresh(), ids.fresh()];
        let u = LogicalTree::union_all(a.clone(), b, outs, vec![a0, a1], vec![b0, b1]);
        assert_eq!(derive_schema(&cat, &u).unwrap().len(), 2);

        // Mismatched types: region key (INT) aligned with nation name (STR).
        let c = get(&cat, "nation", &mut ids);
        let (c0, c1) = (c.output_col(0), c.output_col(1));
        let outs = vec![ids.fresh(), ids.fresh()];
        let bad = LogicalTree::union_all(a.clone(), c.clone(), outs, vec![a0, a1], vec![c1, c0]);
        assert!(derive_schema(&cat, &bad).is_err());

        // Unknown side column id.
        let outs = vec![ids.fresh(), ids.fresh()];
        let dangling = LogicalTree::union_all(
            a.clone(),
            c.clone(),
            outs,
            vec![a0, ColId(999)],
            vec![c0, c1],
        );
        assert!(derive_schema(&cat, &dangling).is_err());

        // Column-count mismatch: two outputs but only one left-side column.
        let outs = vec![ids.fresh(), ids.fresh()];
        let short = LogicalTree::union_all(a, c, outs, vec![a0], vec![c0, c1]);
        assert!(
            derive_schema(&cat, &short).is_err(),
            "side-column lists shorter than the output list must be rejected"
        );
    }

    #[test]
    fn duplicate_output_ids_rejected() {
        let cat = tpch_catalog();
        let def = cat.table_by_name("region").unwrap();
        let tree = LogicalTree {
            op: Operator::Get {
                table: TableId(0),
                cols: vec![ColId(1), ColId(1)],
            },
            children: vec![],
        };
        let _ = def;
        assert!(derive_schema(&cat, &tree).is_err());
    }

    #[test]
    fn sum_over_string_rejected() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let t = get(&cat, "region", &mut ids);
        let name_col = t.output_col(1);
        let out = ids.fresh();
        let agg = LogicalTree::gbagg(
            t,
            vec![],
            vec![AggCall::new(AggFunc::Sum, Some(name_col), out)],
        );
        assert!(derive_schema(&cat, &agg).is_err());
    }
}
