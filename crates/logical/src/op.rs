//! Logical operator payloads (children abstracted away).

use ruletest_common::{ColId, TableId};
use ruletest_expr::{AggCall, Expr};
use std::fmt;

/// Join flavors. `Inner` with a TRUE predicate doubles as a cross product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    RightOuter,
    FullOuter,
    /// Left semi-join: emits left rows with at least one match.
    LeftSemi,
    /// Left anti-join: emits left rows with no match.
    LeftAnti,
}

impl JoinKind {
    /// True for the kinds whose output contains both input schemas.
    pub fn emits_both_sides(self) -> bool {
        matches!(
            self,
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::RightOuter | JoinKind::FullOuter
        )
    }

    /// True if unmatched left rows survive (padded or bare).
    pub fn preserves_left(self) -> bool {
        matches!(
            self,
            JoinKind::LeftOuter | JoinKind::FullOuter | JoinKind::LeftAnti
        )
    }

    /// True if unmatched right rows survive.
    pub fn preserves_right(self) -> bool {
        matches!(self, JoinKind::RightOuter | JoinKind::FullOuter)
    }

    /// SQL join keyword.
    pub fn sql(self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER JOIN",
            JoinKind::LeftOuter => "LEFT OUTER JOIN",
            JoinKind::RightOuter => "RIGHT OUTER JOIN",
            JoinKind::FullOuter => "FULL OUTER JOIN",
            JoinKind::LeftSemi => "SEMI JOIN",
            JoinKind::LeftAnti => "ANTI JOIN",
        }
    }
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql())
    }
}

/// A sort key: column plus direction. NULLs sort first (see
/// `Value::total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortKey {
    pub col: ColId,
    pub descending: bool,
}

impl SortKey {
    pub fn asc(col: ColId) -> Self {
        Self {
            col,
            descending: false,
        }
    }

    pub fn desc(col: ColId) -> Self {
        Self {
            col,
            descending: true,
        }
    }
}

/// Operator kind tags, used by rule patterns and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Get,
    Select,
    Project,
    Join,
    GbAgg,
    UnionAll,
    Distinct,
    Sort,
    Top,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Get => "Get",
            OpKind::Select => "Select",
            OpKind::Project => "Project",
            OpKind::Join => "Join",
            OpKind::GbAgg => "GbAgg",
            OpKind::UnionAll => "UnionAll",
            OpKind::Distinct => "Distinct",
            OpKind::Sort => "Sort",
            OpKind::Top => "Top",
        };
        write!(f, "{s}")
    }
}

/// A logical operator instantiated with its arguments, children abstracted.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operator {
    /// Base-table access; `cols` are the fresh column ids minted for this
    /// instantiation (one per table column, in catalog order).
    Get { table: TableId, cols: Vec<ColId> },
    /// Filter.
    Select { predicate: Expr },
    /// Computing projection: each output column id is bound to an
    /// expression over the child's columns.
    Project { outputs: Vec<(ColId, Expr)> },
    /// Binary join with an ON predicate over both children's columns.
    Join { kind: JoinKind, predicate: Expr },
    /// Group-By Aggregate. An empty `group_by` is scalar aggregation.
    GbAgg {
        group_by: Vec<ColId>,
        aggs: Vec<AggCall>,
    },
    /// Bag union. `outputs` mints the output column ids; `left_cols` and
    /// `right_cols` name, *by id*, which child column feeds each output
    /// position. Id-based (rather than positional) mapping keeps the
    /// operator well-defined when transformations permute a child's column
    /// order (e.g. join commutativity below a union).
    UnionAll {
        outputs: Vec<ColId>,
        left_cols: Vec<ColId>,
        right_cols: Vec<ColId>,
    },
    /// Duplicate elimination over the child's full row.
    Distinct,
    /// ORDER BY. A logical no-op for result-set comparison (results compare
    /// as multisets) but kept because it changes plan shape and cost.
    Sort { keys: Vec<SortKey> },
    /// ORDER BY ... FETCH FIRST n: deterministic via full-row tie-break.
    Top { n: u64, keys: Vec<SortKey> },
}

impl Operator {
    /// This operator's kind tag.
    pub fn kind(&self) -> OpKind {
        match self {
            Operator::Get { .. } => OpKind::Get,
            Operator::Select { .. } => OpKind::Select,
            Operator::Project { .. } => OpKind::Project,
            Operator::Join { .. } => OpKind::Join,
            Operator::GbAgg { .. } => OpKind::GbAgg,
            Operator::UnionAll { .. } => OpKind::UnionAll,
            Operator::Distinct => OpKind::Distinct,
            Operator::Sort { .. } => OpKind::Sort,
            Operator::Top { .. } => OpKind::Top,
        }
    }

    /// Number of children this operator requires.
    pub fn arity(&self) -> usize {
        match self {
            Operator::Get { .. } => 0,
            Operator::Join { .. } | Operator::UnionAll { .. } => 2,
            _ => 1,
        }
    }

    /// The join kind, if this is a join.
    pub fn join_kind(&self) -> Option<JoinKind> {
        match self {
            Operator::Join { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// Short human-readable label (for EXPLAIN-style dumps).
    pub fn label(&self) -> String {
        match self {
            Operator::Get { table, .. } => format!("Get({table})"),
            Operator::Select { predicate } => format!("Select[{predicate}]"),
            Operator::Project { outputs } => format!("Project[{} cols]", outputs.len()),
            Operator::Join { kind, predicate } => format!("{kind}[{predicate}]"),
            Operator::GbAgg { group_by, aggs } => {
                format!("GbAgg[{} keys, {} aggs]", group_by.len(), aggs.len())
            }
            Operator::UnionAll { .. } => "UnionAll".to_string(),
            Operator::Distinct => "Distinct".to_string(),
            Operator::Sort { keys } => format!("Sort[{} keys]", keys.len()),
            Operator::Top { n, .. } => format!("Top[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_per_kind() {
        assert_eq!(
            Operator::Get {
                table: TableId(0),
                cols: vec![]
            }
            .arity(),
            0
        );
        assert_eq!(
            Operator::Join {
                kind: JoinKind::Inner,
                predicate: Expr::true_lit()
            }
            .arity(),
            2
        );
        assert_eq!(Operator::Distinct.arity(), 1);
        assert_eq!(
            Operator::UnionAll {
                outputs: vec![],
                left_cols: vec![],
                right_cols: vec![]
            }
            .arity(),
            2
        );
    }

    #[test]
    fn join_kind_properties() {
        assert!(JoinKind::Inner.emits_both_sides());
        assert!(!JoinKind::LeftSemi.emits_both_sides());
        assert!(JoinKind::LeftOuter.preserves_left());
        assert!(!JoinKind::LeftOuter.preserves_right());
        assert!(JoinKind::FullOuter.preserves_left() && JoinKind::FullOuter.preserves_right());
        assert!(JoinKind::LeftAnti.preserves_left());
        assert!(!JoinKind::RightOuter.preserves_left());
    }

    #[test]
    fn kind_tags_cover_all_ops() {
        let ops = [
            Operator::Get {
                table: TableId(0),
                cols: vec![],
            },
            Operator::Select {
                predicate: Expr::true_lit(),
            },
            Operator::Project { outputs: vec![] },
            Operator::Join {
                kind: JoinKind::Inner,
                predicate: Expr::true_lit(),
            },
            Operator::GbAgg {
                group_by: vec![],
                aggs: vec![],
            },
            Operator::UnionAll {
                outputs: vec![],
                left_cols: vec![],
                right_cols: vec![],
            },
            Operator::Distinct,
            Operator::Sort { keys: vec![] },
            Operator::Top { n: 5, keys: vec![] },
        ];
        let kinds: Vec<OpKind> = ops.iter().map(Operator::kind).collect();
        assert_eq!(
            kinds,
            vec![
                OpKind::Get,
                OpKind::Select,
                OpKind::Project,
                OpKind::Join,
                OpKind::GbAgg,
                OpKind::UnionAll,
                OpKind::Distinct,
                OpKind::Sort,
                OpKind::Top
            ]
        );
        for op in &ops {
            assert!(!op.label().is_empty());
        }
    }

    #[test]
    fn sort_key_constructors() {
        assert!(!SortKey::asc(ColId(1)).descending);
        assert!(SortKey::desc(ColId(1)).descending);
    }
}
