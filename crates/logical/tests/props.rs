//! Property tests for logical-tree utilities and schema derivation, on
//! the in-repo `check` harness.

use ruletest_common::check::{gen, CheckConfig};
use ruletest_common::{ensure_eq, forall, Rng};
use ruletest_expr::Expr;
use ruletest_logical::{derive_schema, IdGen, JoinKind, LogicalTree, Operator};
use ruletest_storage::tpch_catalog;

/// Builds a random (always-valid) join/select chain over the catalog —
/// a lightweight local generator so this crate does not depend on core.
fn random_chain(seed: u64, depth: usize) -> LogicalTree {
    let cat = tpch_catalog();
    let mut rng = Rng::new(seed);
    let mut ids = IdGen::new();
    let tables = cat.tables();
    let mut tree = LogicalTree::get(&tables[rng.gen_index(tables.len())], &mut ids);
    for _ in 0..depth {
        if rng.gen_bool(0.5) {
            let right = LogicalTree::get(&tables[rng.gen_index(tables.len())], &mut ids);
            tree = LogicalTree::join(JoinKind::Inner, tree, right, Expr::true_lit());
        } else {
            tree = LogicalTree::select(tree, Expr::true_lit());
        }
    }
    tree
}

/// `IdGen::above` always allocates ids strictly greater than any id in
/// the tree.
#[test]
fn idgen_above_is_strictly_fresh() {
    forall!(CheckConfig::default(); seed in gen::u64s(), depth in gen::usizes(0..6) => {
        let tree = random_chain(seed, depth);
        let mut gen = IdGen::above(&tree);
        let fresh = gen.fresh();
        tree.visit(&mut |n| {
            if let Operator::Get { cols, .. } = &n.op {
                for c in cols {
                    assert!(c.0 < fresh.0, "fresh id {fresh} collides with {c}");
                }
            }
        });
        Ok(())
    });
}

/// Schema derivation is deterministic and sized consistently with the
/// operator semantics.
#[test]
fn schema_derivation_is_deterministic() {
    forall!(CheckConfig::default(); seed in gen::u64s(), depth in gen::usizes(0..6) => {
        let cat = tpch_catalog();
        let tree = random_chain(seed, depth);
        let a = derive_schema(&cat, &tree).unwrap();
        let b = derive_schema(&cat, &tree).unwrap();
        ensure_eq!(&a, &b);
        // Ids are unique within a schema.
        let mut ids: Vec<_> = a.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        ensure_eq!(ids.len(), a.len());
        Ok(())
    });
}

/// op_count equals the number of nodes visited.
#[test]
fn op_count_matches_visit() {
    forall!(CheckConfig::default(); seed in gen::u64s(), depth in gen::usizes(0..6) => {
        let tree = random_chain(seed, depth);
        let mut n = 0usize;
        tree.visit(&mut |_| n += 1);
        ensure_eq!(n, tree.op_count());
        ensure_eq!(tree.op_count(), depth + 1 + tree.tables().len() - 1);
        Ok(())
    });
}
