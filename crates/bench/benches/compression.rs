//! Microbenchmarks for the test-suite compression algorithms (§5) on
//! synthetic bipartite instances of growing size. Runs on the
//! dependency-free std::time harness.

use ruletest_bench::harness;
use ruletest_common::Rng;
use ruletest_core::compress::{matching, smc, topk, Instance};
use std::collections::HashMap;

/// A synthetic instance: `targets` rules, `k` per rule, with dedicated
/// queries plus random cross-coverage; edge costs exceed node costs
/// (the monotonicity invariant).
fn synth(targets: usize, k: usize, seed: u64) -> Instance {
    let mut rng = Rng::new(seed);
    let nq = targets * k;
    let node_cost: Vec<f64> = (0..nq).map(|_| 10.0 + rng.gen_below(1000) as f64).collect();
    let mut adjacency = vec![Vec::new(); targets];
    let mut edge_cost = HashMap::new();
    let mut generated_for = vec![0usize; nq];
    for t in 0..targets {
        for slot in 0..k {
            let q = t * k + slot;
            generated_for[q] = t;
            adjacency[t].push(q);
            edge_cost.insert(
                (t, q),
                node_cost[q] * (1.0 + rng.gen_below(300) as f64 / 100.0),
            );
        }
    }
    // Cross coverage: each query additionally covers ~25% of other targets.
    for q in 0..nq {
        for t in 0..targets {
            if generated_for[q] != t && rng.gen_bool(0.25) {
                adjacency[t].push(q);
                edge_cost.insert(
                    (t, q),
                    node_cost[q] * (1.0 + rng.gen_below(300) as f64 / 100.0),
                );
            }
        }
    }
    Instance {
        k,
        node_cost,
        adjacency,
        edge_cost,
        generated_for,
    }
}

fn main() {
    let mut group = harness::group("compression");
    for &targets in &[10usize, 30, 100] {
        let inst = synth(targets, 10, 42);
        group.bench(&format!("smc/{targets}"), || {
            smc(&inst).unwrap().total_cost(&inst)
        });
        group.bench(&format!("topk/{targets}"), || {
            topk(&inst).unwrap().total_cost(&inst)
        });
    }
    // The Hungarian solver on the no-sharing variant.
    let inst = synth(12, 4, 7);
    group.bench("matching/12x4", || {
        matching(&inst).unwrap().total_cost(&inst)
    });
    group.finish();
}
