//! Microbenchmarks for the test-suite compression algorithms (§5) on
//! synthetic bipartite instances of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruletest_core::compress::{matching, smc, topk, Instance};
use ruletest_common::Rng;
use std::collections::HashMap;

/// A synthetic instance: `targets` rules, `k` per rule, with dedicated
/// queries plus random cross-coverage; edge costs exceed node costs
/// (the monotonicity invariant).
fn synth(targets: usize, k: usize, seed: u64) -> Instance {
    let mut rng = Rng::new(seed);
    let nq = targets * k;
    let node_cost: Vec<f64> = (0..nq)
        .map(|_| 10.0 + rng.gen_below(1000) as f64)
        .collect();
    let mut adjacency = vec![Vec::new(); targets];
    let mut edge_cost = HashMap::new();
    let mut generated_for = vec![0usize; nq];
    for t in 0..targets {
        for slot in 0..k {
            let q = t * k + slot;
            generated_for[q] = t;
            adjacency[t].push(q);
            edge_cost.insert((t, q), node_cost[q] * (1.0 + rng.gen_below(300) as f64 / 100.0));
        }
    }
    // Cross coverage: each query additionally covers ~25% of other targets.
    for q in 0..nq {
        for t in 0..targets {
            if generated_for[q] != t && rng.gen_bool(0.25) {
                adjacency[t].push(q);
                edge_cost
                    .insert((t, q), node_cost[q] * (1.0 + rng.gen_below(300) as f64 / 100.0));
            }
        }
    }
    Instance {
        k,
        node_cost,
        adjacency,
        edge_cost,
        generated_for,
    }
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    for &targets in &[10usize, 30, 100] {
        let inst = synth(targets, 10, 42);
        group.bench_with_input(BenchmarkId::new("smc", targets), &inst, |b, inst| {
            b.iter(|| smc(inst).unwrap().total_cost(inst))
        });
        group.bench_with_input(BenchmarkId::new("topk", targets), &inst, |b, inst| {
            b.iter(|| topk(inst).unwrap().total_cost(inst))
        });
    }
    // The Hungarian solver on the no-sharing variant.
    let inst = synth(12, 4, 7);
    group.bench_function("matching/12x4", |b| {
        b.iter(|| matching(&inst).unwrap().total_cost(&inst))
    });
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
