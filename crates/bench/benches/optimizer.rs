//! Microbenchmarks for the optimizer substrate: full optimization of
//! representative query shapes, with and without rule masks. Runs on the
//! dependency-free std::time harness.

use ruletest_bench::harness;
use ruletest_expr::{AggCall, AggFunc, Expr};
use ruletest_logical::{IdGen, JoinKind, LogicalTree};
use ruletest_optimizer::{Optimizer, OptimizerConfig};
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;

fn star_query(opt: &Optimizer, joins: usize) -> LogicalTree {
    let cat = &opt.database().catalog;
    let mut ids = IdGen::new();
    let tables = ["lineitem", "orders", "part", "supplier", "customer"];
    let mut tree = LogicalTree::get(cat.table_by_name("lineitem").unwrap(), &mut ids);
    let mut left_key = tree.output_col(0);
    for t in tables.iter().skip(1).take(joins) {
        let right = LogicalTree::get(cat.table_by_name(t).unwrap(), &mut ids);
        let rk = right.output_col(0);
        tree = LogicalTree::join(
            JoinKind::Inner,
            tree,
            right,
            Expr::eq(Expr::col(left_key), Expr::col(rk)),
        );
        left_key = rk;
    }
    let agg = ids.fresh();
    LogicalTree::gbagg(
        tree,
        vec![],
        vec![AggCall::new(AggFunc::CountStar, None, agg)],
    )
}

fn main() {
    let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
    let opt = Optimizer::new(db);
    let mut group = harness::group("optimizer");
    for joins in [1usize, 2, 3] {
        let q = star_query(&opt, joins);
        group.bench(&format!("optimize/{joins}-join"), || {
            opt.optimize(&q).unwrap().cost
        });
    }
    let q = star_query(&opt, 2);
    let masked = OptimizerConfig::disabling(&[opt.rule_id("JoinToHashJoin").unwrap()]);
    group.bench("optimize/2-join-masked", || {
        opt.optimize_with(&q, &masked).unwrap().cost
    });
    group.finish();
}
