//! Microbenchmarks for the execution substrate: join algorithms and
//! aggregation at a larger scale factor. Runs on the dependency-free
//! std::time harness.

use ruletest_bench::harness;
use ruletest_executor::execute;
use ruletest_expr::{AggCall, AggFunc, Expr};
use ruletest_logical::{IdGen, JoinKind, LogicalTree};
use ruletest_optimizer::{Optimizer, OptimizerConfig};
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;

fn main() {
    // Scale factor 4: ~1200 lineitem rows.
    let db = Arc::new(tpch_database(&TpchConfig::scaled(7, 4)).unwrap());
    let opt = Optimizer::new(db.clone());
    let cat = &db.catalog;

    let join_query = || {
        let mut ids = IdGen::new();
        let l = LogicalTree::get(cat.table_by_name("lineitem").unwrap(), &mut ids);
        let o = LogicalTree::get(cat.table_by_name("orders").unwrap(), &mut ids);
        let pred = Expr::eq(Expr::col(l.output_col(0)), Expr::col(o.output_col(0)));
        let join = LogicalTree::join(JoinKind::Inner, l, o, pred);
        let out = ids.fresh();
        LogicalTree::gbagg(
            join,
            vec![],
            vec![AggCall::new(AggFunc::CountStar, None, out)],
        )
    };

    let q = join_query();
    let hash_plan = opt.optimize(&q).unwrap().plan;
    let nl_plan = opt
        .optimize_with(
            &q,
            &OptimizerConfig::disabling(&[
                opt.rule_id("JoinToHashJoin").unwrap(),
                opt.rule_id("InnerJoinToMergeJoin").unwrap(),
            ]),
        )
        .unwrap()
        .plan;

    let mut group = harness::group("executor");
    group.bench("join/best-plan", || execute(&db, &hash_plan).unwrap().len());
    group.bench("join/nl-only-plan", || {
        execute(&db, &nl_plan).unwrap().len()
    });
    group.finish();
}
