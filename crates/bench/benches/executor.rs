//! Microbenchmarks for the execution substrate: join algorithms and
//! aggregation at a larger scale factor.

use criterion::{criterion_group, criterion_main, Criterion};
use ruletest_executor::execute;
use ruletest_expr::{AggCall, AggFunc, Expr};
use ruletest_logical::{IdGen, JoinKind, LogicalTree};
use ruletest_optimizer::{Optimizer, OptimizerConfig};
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;

fn bench_executor(c: &mut Criterion) {
    // Scale factor 4: ~1200 lineitem rows.
    let db = Arc::new(tpch_database(&TpchConfig::scaled(7, 4)).unwrap());
    let opt = Optimizer::new(db.clone());
    let cat = &db.catalog;

    let join_query = || {
        let mut ids = IdGen::new();
        let l = LogicalTree::get(cat.table_by_name("lineitem").unwrap(), &mut ids);
        let o = LogicalTree::get(cat.table_by_name("orders").unwrap(), &mut ids);
        let pred = Expr::eq(Expr::col(l.output_col(0)), Expr::col(o.output_col(0)));
        let join = LogicalTree::join(JoinKind::Inner, l, o, pred);
        let out = ids.fresh();
        LogicalTree::gbagg(join, vec![], vec![AggCall::new(AggFunc::CountStar, None, out)])
    };

    let q = join_query();
    let hash_plan = opt.optimize(&q).unwrap().plan;
    let nl_plan = opt
        .optimize_with(
            &q,
            &OptimizerConfig::disabling(&[
                opt.rule_id("JoinToHashJoin").unwrap(),
                opt.rule_id("InnerJoinToMergeJoin").unwrap(),
            ]),
        )
        .unwrap()
        .plan;

    let mut group = c.benchmark_group("executor");
    group.bench_function("join/best-plan", |b| {
        b.iter(|| execute(&db, &hash_plan).unwrap().len())
    });
    group.bench_function("join/nl-only-plan", |b| {
        b.iter(|| execute(&db, &nl_plan).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
