//! Microbenchmarks for query generation (the machinery behind Figures
//! 8–10): pattern instantiation vs. stochastic search, singletons and
//! pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruletest_core::{Framework, FrameworkConfig, GenConfig, Strategy};

fn bench_generation(c: &mut Criterion) {
    let fw = Framework::new(&FrameworkConfig::default()).unwrap();
    let mut group = c.benchmark_group("generation");
    group.sample_size(20);

    // A common rule (cheap for both strategies) and a rare one. The rare
    // rule is only benchmarked under PATTERN — its RANDOM search needs
    // hundreds of trials per iteration, which belongs in the `repro`
    // figures, not a microbenchmark.
    for (rule_name, strategies) in [
        (
            "InnerJoinCommute",
            &[Strategy::Pattern, Strategy::Random][..],
        ),
        ("AntiJoinToLojFilter", &[Strategy::Pattern][..]),
    ] {
        let rule = fw.optimizer.rule_id(rule_name).unwrap();
        for &strategy in strategies {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), rule_name),
                &rule,
                |b, &rule| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        fw.find_query_for_rule(
                            rule,
                            strategy,
                            &GenConfig {
                                seed,
                                max_trials: 3_000,
                                ..Default::default()
                            },
                        )
                        .expect("generation succeeds")
                        .trials
                    })
                },
            );
        }
    }

    // Pair composition.
    let a = fw.optimizer.rule_id("SelectMerge").unwrap();
    let b_rule = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
    group.bench_function("PATTERN/pair", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            fw.find_query_for_pair(
                (a, b_rule),
                Strategy::Pattern,
                &GenConfig {
                    seed,
                    max_trials: 500,
                    ..Default::default()
                },
            )
            .expect("pair generation")
            .trials
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
