//! Microbenchmarks for query generation (the machinery behind Figures
//! 8–10): pattern instantiation vs. stochastic search, singletons and
//! pairs. Runs on the dependency-free std::time harness.

use ruletest_bench::harness;
use ruletest_core::{Framework, FrameworkConfig, GenConfig, Strategy};

fn main() {
    let fw = Framework::new(&FrameworkConfig::default()).unwrap();
    let mut group = harness::group("generation");
    group.sample_size(20);

    // A common rule (cheap for both strategies) and a rare one. The rare
    // rule is only benchmarked under PATTERN — its RANDOM search needs
    // hundreds of trials per iteration, which belongs in the `repro`
    // figures, not a microbenchmark.
    for (rule_name, strategies) in [
        (
            "InnerJoinCommute",
            &[Strategy::Pattern, Strategy::Random][..],
        ),
        ("AntiJoinToLojFilter", &[Strategy::Pattern][..]),
    ] {
        let rule = fw.optimizer.rule_id(rule_name).unwrap();
        for &strategy in strategies {
            let mut seed = 0u64;
            group.bench(&format!("{}/{rule_name}", strategy.name()), || {
                seed += 1;
                fw.find_query_for_rule(
                    rule,
                    strategy,
                    &GenConfig {
                        seed,
                        max_trials: 3_000,
                        ..Default::default()
                    },
                )
                .expect("generation succeeds")
                .trials
            });
        }
    }

    // Pair composition.
    let a = fw.optimizer.rule_id("SelectMerge").unwrap();
    let b_rule = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
    let mut seed = 0u64;
    group.bench("PATTERN/pair", || {
        seed += 1;
        fw.find_query_for_pair(
            (a, b_rule),
            Strategy::Pattern,
            &GenConfig {
                seed,
                max_trials: 500,
                ..Default::default()
            },
        )
        .expect("pair generation")
        .trials
    });
    group.finish();
}
