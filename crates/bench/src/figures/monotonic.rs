//! Figure 14: exploiting cost monotonicity (§5.3.1) to reduce optimizer
//! invocations while building the rule-pair bipartite graph.

use super::{fmt_cost, ReproConfig};
use crate::table::FigureTable;
use ruletest_core::compress::{topk, Instance};
use ruletest_core::{build_graph, build_graph_pruned, generate_suite_lenient, pair_targets};
use ruletest_core::{GenConfig, Strategy};

/// Figure 14: optimizer calls with exhaustive edge computation vs. the
/// monotonicity-pruned build (paper: 6x–9x fewer calls, identical result
/// quality).
pub fn fig14(cfg: &ReproConfig) -> FigureTable {
    let fw = cfg.framework();
    let ns: &[usize] = if cfg.quick { &[4, 6] } else { &[4, 8, 12] };
    let k = if cfg.quick { 3 } else { 5 };
    let mut t = FigureTable::new(
        "Figure 14: Exploiting monotonicity (optimizer calls for pair-graph construction)",
        &[
            "n (rules)",
            "pairs",
            "exhaustive calls",
            "pruned calls",
            "savings",
            "TOPK edge-cost sum (exhaustive)",
            "TOPK edge-cost sum (pruned)",
            "same quality",
        ],
    );
    for &n in ns {
        let targets = pair_targets(&fw, n);
        let pairs = targets.len();
        let (suite, skipped) = generate_suite_lenient(
            &fw,
            targets,
            k,
            Strategy::Pattern,
            &GenConfig {
                seed: cfg.seed.wrapping_add(0x1400 + n as u64),
                pad_ops: 2,
                max_trials: 60,
                ..Default::default()
            },
        )
        .expect("pair suite generation");
        if !skipped.is_empty() {
            t.note(format!("n={n}: {} pairs skipped", skipped.len()));
        }
        let eager = build_graph(&fw, &suite).expect("eager graph");
        let pruned = build_graph_pruned(&fw, &suite).expect("pruned graph");
        // Soundness metric: the sum of the selected edge costs. Pruning
        // provably preserves it (ties at the k-th position may swap between
        // equal-cost edges, which can shift node *sharing* slightly, so the
        // full total is reported but not asserted).
        let edge_sum = |g: &ruletest_core::BipartiteGraph| -> f64 {
            let inst = Instance::from_graph(g);
            let sol = topk(&inst).expect("topk");
            sol.assignment
                .iter()
                .enumerate()
                .flat_map(|(t, qs)| qs.iter().map(move |&q| (t, q)))
                .map(|(t, q)| inst.edge(t, q))
                .sum()
        };
        let cost_eager: f64 = edge_sum(&eager);
        let cost_pruned: f64 = edge_sum(&pruned);
        // Tolerance: our memo approximates Cascades group-merging, so a
        // fraction of a percent of edges can violate Cost(q) <= Cost(q, ¬R)
        // through group-placement asymmetries (see DESIGN.md §3); the
        // paper's own "well-behaved optimizer" is an idealization too.
        let same = (cost_eager - cost_pruned).abs() <= 0.01 * cost_eager.max(1.0);
        t.row(vec![
            n.to_string(),
            pairs.to_string(),
            eager.optimizer_calls.to_string(),
            pruned.optimizer_calls.to_string(),
            format!(
                "{:.1}x",
                eager.optimizer_calls as f64 / pruned.optimizer_calls.max(1) as f64
            ),
            fmt_cost(cost_eager),
            fmt_cost(cost_pruned),
            if same { "yes" } else { "NO" }.to_string(),
        ]);
        t.note(format!(
            "n={n} shape check (pruned saves calls, same TOPK quality): {}",
            if pruned.optimizer_calls < eager.optimizer_calls && same {
                "PASS"
            } else {
                "FAIL"
            }
        ));
    }
    t.note(
        "paper: monotonicity saves a factor of 6x–9x of optimizer calls without affecting quality",
    );
    t
}
