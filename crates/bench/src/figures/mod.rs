//! Figure-by-figure reproduction of the paper's evaluation (§6).

pub mod compression;
pub mod coverage;
pub mod monotonic;

use ruletest_core::{Framework, FrameworkConfig};
use ruletest_storage::TpchConfig;
use std::path::PathBuf;

pub use compression::{fig11, fig12, fig13};
pub use coverage::{fig10_note, fig8, fig9_and_10};
pub use monotonic::fig14;

/// Harness configuration shared by all figures.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    pub seed: u64,
    /// Quick mode shrinks the parameter sweeps (for CI); full mode matches
    /// the paper's sweep shapes.
    pub quick: bool,
    /// Directory for CSV output.
    pub out_dir: PathBuf,
}

impl Default for ReproConfig {
    fn default() -> Self {
        Self {
            seed: 0xF1_60_5E,
            quick: false,
            out_dir: PathBuf::from("repro_out"),
        }
    }
}

impl ReproConfig {
    /// A fresh framework over the standard test database.
    pub fn framework(&self) -> Framework {
        Framework::new(&FrameworkConfig::default()).expect("framework construction")
    }

    /// A framework over a scaled-up database. The compression figures
    /// (11–13) compare optimizer-*estimated* suite costs: at larger scale
    /// the spread between `Cost(q)` and `Cost(q, ¬R)` widens dramatically
    /// (e.g. a filter stuck above a join on a large table), which is the
    /// regime the paper's SMC-vs-TOPK contrast lives in. Nothing is
    /// executed in these figures, so scale is cheap.
    pub fn framework_scaled(&self, factor: usize) -> Framework {
        let cfg = FrameworkConfig {
            db: TpchConfig::scaled(0xC0FFEE, factor),
            ..Default::default()
        };
        Framework::new(&cfg).expect("framework construction")
    }
}

/// Formats a f64 cost compactly.
pub(crate) fn fmt_cost(c: f64) -> String {
    if c >= 1e6 {
        format!("{:.3}M", c / 1e6)
    } else if c >= 1e3 {
        format!("{:.1}k", c / 1e3)
    } else {
        format!("{c:.1}")
    }
}
