//! Figures 11–13: test-suite compression quality.

use super::{fmt_cost, ReproConfig};
use crate::table::FigureTable;
use ruletest_core::compress::{baseline, smc, topk, Instance};
use ruletest_core::{
    build_graph, generate_suite, generate_suite_lenient, pair_targets, singleton_targets,
};
use ruletest_core::{Framework, GenConfig, Strategy, TestSuite};

fn suite_cfg(seed: u64) -> GenConfig {
    GenConfig {
        seed,
        // Correctness suites use complex queries (§4: "generate a complex
        // random query that exercises a given rule") — pad the pattern.
        pad_ops: 2,
        // Pattern generation either succeeds quickly or (for a genuinely
        // incompatible pair) never; a short per-attempt budget keeps the
        // sweep harness from stalling on pathological targets, which the
        // lenient generator then drops.
        max_trials: 60,
        ..Default::default()
    }
}

fn compression_row(fw: &Framework, suite: &TestSuite) -> (f64, f64, f64) {
    let graph = build_graph(fw, suite).expect("graph construction");
    let inst = Instance::from_graph(&graph);
    let b = baseline(&inst).expect("baseline").total_cost(&inst);
    let s = smc(&inst).expect("smc").total_cost(&inst);
    let t = topk(&inst).expect("topk").total_cost(&inst);
    (b, s, t)
}

/// Figure 11: compression for **singleton rules**, k = 10, varying the
/// number of rules (paper: SMC and TOPK are 1–3 orders of magnitude better
/// than BASELINE; log-scale y-axis).
pub fn fig11(cfg: &ReproConfig) -> FigureTable {
    let fw = cfg.framework_scaled(8);
    let ns: &[usize] = if cfg.quick {
        &[5, 10, 15]
    } else {
        &[5, 10, 15, 20, 25, 30]
    };
    let k = 10;
    let mut t = FigureTable::new(
        "Figure 11: Test suite compression for singleton rules (total estimated cost, k=10)",
        &["n (rules)", "BASELINE", "SMC", "TOPK", "BASELINE/TOPK"],
    );
    for &n in ns {
        let suite = generate_suite(
            &fw,
            singleton_targets(&fw, n),
            k,
            Strategy::Pattern,
            &suite_cfg(cfg.seed.wrapping_add(n as u64)),
        )
        .expect("suite generation");
        let (b, s, tk) = compression_row(&fw, &suite);
        t.row(vec![
            n.to_string(),
            fmt_cost(b),
            fmt_cost(s),
            fmt_cost(tk),
            format!("{:.1}x", b / tk),
        ]);
        t.note(format!(
            "n={n} shape check (SMC < BASELINE and TOPK < BASELINE): {}",
            if s < b && tk < b { "PASS" } else { "FAIL" }
        ));
    }
    t.note("paper: both SMC and TOPK beat BASELINE by 1–3 orders of magnitude");
    t
}

/// Figure 12: compression for **rule pairs** (paper: TOPK always lowest;
/// SMC varies from good to significantly worse than BASELINE because it
/// ignores edge costs).
pub fn fig12(cfg: &ReproConfig) -> FigureTable {
    let fw = cfg.framework_scaled(8);
    let ns: &[usize] = if cfg.quick { &[4, 6] } else { &[4, 8, 12] };
    let k = if cfg.quick { 3 } else { 5 };
    let mut t = FigureTable::new(
        "Figure 12: Test suite compression for rule pairs (total estimated cost)",
        &["n (rules)", "pairs", "BASELINE", "SMC", "TOPK"],
    );
    for &n in ns {
        let targets = pair_targets(&fw, n);
        let pairs = targets.len();
        let (suite, skipped) = generate_suite_lenient(
            &fw,
            targets,
            k,
            Strategy::Pattern,
            &suite_cfg(cfg.seed.wrapping_add(0x1200 + n as u64)),
        )
        .expect("pair suite generation");
        if !skipped.is_empty() {
            t.note(format!(
                "n={n}: {} of {pairs} pairs skipped (no k distinct untruncated queries found)",
                skipped.len()
            ));
        }
        let (b, s, tk) = compression_row(&fw, &suite);
        t.row(vec![
            n.to_string(),
            pairs.to_string(),
            fmt_cost(b),
            fmt_cost(s),
            fmt_cost(tk),
        ]);
        // §5.4: TOPK ignores node-sharing benefits, so SMC can edge it out
        // on small instances where sharing dominates; the robustness claim
        // is TOPK <= BASELINE everywhere and TOPK never far behind SMC,
        // while SMC's gap to TOPK grows with n (edge-blindness).
        t.note(format!(
            "n={n} shape check (TOPK <= BASELINE, TOPK within 10% of SMC): {}",
            if tk <= b + 1e-9 && tk <= s * 1.10 + 1e-9 {
                "PASS"
            } else {
                "FAIL"
            }
        ));
    }
    t.note(format!("k = {k}; paper uses k=10 over up to 15 rules — scaled to the substrate (see EXPERIMENTS.md)"));
    t.note("paper: TOPK lowest everywhere; SMC between good and worse-than-BASELINE");
    t
}

/// Figure 13: impact of the test-suite size k at a fixed rule-pair set
/// (paper: TOPK best across all k; SMC good at k=1 but degrades as k
/// grows).
pub fn fig13(cfg: &ReproConfig) -> FigureTable {
    let fw = cfg.framework_scaled(8);
    let n = if cfg.quick { 5 } else { 6 };
    let ks: &[usize] = if cfg.quick {
        &[1, 2, 5]
    } else {
        &[1, 2, 5, 10]
    };
    let mut t = FigureTable::new(
        "Figure 13: Impact of the test suite size on solution quality (rule pairs)",
        &["k", "BASELINE", "SMC", "TOPK", "SMC/TOPK"],
    );
    for &k in ks {
        let (suite, skipped) = generate_suite_lenient(
            &fw,
            pair_targets(&fw, n),
            k,
            Strategy::Pattern,
            &suite_cfg(cfg.seed.wrapping_add(0x1300 + k as u64)),
        )
        .expect("pair suite generation");
        if !skipped.is_empty() {
            t.note(format!("k={k}: {} pairs skipped", skipped.len()));
        }
        let (b, s, tk) = compression_row(&fw, &suite);
        t.row(vec![
            k.to_string(),
            fmt_cost(b),
            fmt_cost(s),
            fmt_cost(tk),
            format!("{:.2}x", s / tk),
        ]);
    }
    t.note(format!(
        "{} rule pairs over the first {n} rules; paper uses 15C2 pairs",
        pair_targets(&fw, n).len()
    ));
    t.note("paper: TOPK best for all k; SMC quality drops as k increases");
    t
}
