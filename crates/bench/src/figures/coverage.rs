//! Figures 8–10: RANDOM vs PATTERN query generation efficiency.

use super::ReproConfig;
use crate::table::FigureTable;
use ruletest_core::{GenConfig, Strategy};
use std::time::Duration;

/// Trial caps. Exhausted searches report the cap (a lower bound on the
/// true trial count, as in any capped experiment).
const PATTERN_CAP: usize = 60;
const RANDOM_CAP_SINGLE: usize = 2_000;
const RANDOM_CAP_PAIR: usize = 250;

/// Figure 8: number of trials to generate a query for each **singleton
/// rule**, RANDOM vs PATTERN (paper: PATTERN needs 1–4 trials, RANDOM up
/// to ~40; totals 234 vs 38 over 30 rules).
pub fn fig8(cfg: &ReproConfig) -> FigureTable {
    let fw = cfg.framework();
    let rules: Vec<_> = fw
        .optimizer
        .exploration_rule_ids()
        .into_iter()
        .take(30)
        .collect();
    let mut t = FigureTable::new(
        "Figure 8: Random vs. Pattern based generation for singleton rules (trials)",
        &["rule", "RANDOM", "PATTERN"],
    );
    let (mut tot_r, mut tot_p) = (0usize, 0usize);
    let mut exhausted_r = 0usize;
    for (i, rid) in rules.iter().enumerate() {
        let name = fw.optimizer.rule(*rid).name;
        let rnd = fw.find_query_for_rule(
            *rid,
            Strategy::Random,
            &GenConfig {
                seed: cfg.seed.wrapping_add(i as u64),
                max_trials: RANDOM_CAP_SINGLE,
                ..Default::default()
            },
        );
        let pat = fw.find_query_for_rule(
            *rid,
            Strategy::Pattern,
            &GenConfig {
                seed: cfg.seed.wrapping_add(1000 + i as u64),
                max_trials: PATTERN_CAP,
                ..Default::default()
            },
        );
        let r_trials = match &rnd {
            Ok(o) => o.trials,
            Err(_) => {
                exhausted_r += 1;
                RANDOM_CAP_SINGLE
            }
        };
        let p_trials = match &pat {
            Ok(o) => o.trials,
            Err(_) => PATTERN_CAP,
        };
        tot_r += r_trials;
        tot_p += p_trials;
        t.row(vec![
            name.to_string(),
            format!("{r_trials}{}", if rnd.is_err() { "+" } else { "" }),
            format!("{p_trials}{}", if pat.is_err() { "+" } else { "" }),
        ]);
    }
    t.note(format!(
        "totals over {} rules: RANDOM = {tot_r} trials ({exhausted_r} capped), PATTERN = {tot_p} trials (paper: 234 vs 38)",
        rules.len()
    ));
    t.note(format!(
        "shape check (PATTERN total < RANDOM total): {}",
        if tot_p < tot_r { "PASS" } else { "FAIL" }
    ));
    t
}

/// Figures 9 and 10: trials and time for **rule pairs** at n rules
/// (paper: n=15 gives 1187 vs 383 trials; n=30 gives >13000 vs <1000;
/// Figure 10 shows the same gap in generation time).
pub fn fig9_and_10(cfg: &ReproConfig) -> (FigureTable, FigureTable) {
    let fw = cfg.framework();
    let ns: &[usize] = if cfg.quick { &[8, 15] } else { &[15, 30] };
    let mut trials_t = FigureTable::new(
        "Figure 9: Random vs. Pattern based generation for rule pairs (total trials, log-scale in the paper)",
        &["n (rules)", "pairs", "RANDOM trials", "RANDOM capped", "PATTERN trials", "PATTERN capped", "max RANDOM", "max PATTERN"],
    );
    let mut time_t = FigureTable::new(
        "Figure 10: Random vs. Pattern based generation for rule pairs (total generation time)",
        &["n (rules)", "pairs", "RANDOM time (s)", "PATTERN time (s)"],
    );
    for &n in ns {
        let rules: Vec<_> = fw
            .optimizer
            .exploration_rule_ids()
            .into_iter()
            .take(n)
            .collect();
        let mut pairs = Vec::new();
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                pairs.push((rules[i], rules[j]));
            }
        }
        let mut tot = [0usize; 2];
        let mut capped = [0usize; 2];
        let mut max_trials = [0usize; 2];
        let mut time = [Duration::ZERO; 2];
        for (pi, pair) in pairs.iter().enumerate() {
            for (si, strategy) in [Strategy::Random, Strategy::Pattern]
                .into_iter()
                .enumerate()
            {
                let cap = if strategy == Strategy::Random {
                    RANDOM_CAP_PAIR
                } else {
                    PATTERN_CAP
                };
                let gen_cfg = GenConfig {
                    seed: cfg
                        .seed
                        .wrapping_add((n as u64) << 40)
                        .wrapping_add((pi as u64) << 8)
                        .wrapping_add(si as u64),
                    max_trials: cap,
                    target_ops: 7,
                    ..Default::default()
                };
                let started = std::time::Instant::now();
                let res = fw.find_query_for_pair(*pair, strategy, &gen_cfg);
                time[si] += started.elapsed();
                let trials = match res {
                    Ok(o) => o.trials,
                    Err(_) => {
                        capped[si] += 1;
                        cap
                    }
                };
                tot[si] += trials;
                max_trials[si] = max_trials[si].max(trials);
            }
        }
        trials_t.row(vec![
            n.to_string(),
            pairs.len().to_string(),
            tot[0].to_string(),
            capped[0].to_string(),
            tot[1].to_string(),
            capped[1].to_string(),
            max_trials[0].to_string(),
            max_trials[1].to_string(),
        ]);
        time_t.row(vec![
            n.to_string(),
            pairs.len().to_string(),
            format!("{:.2}", time[0].as_secs_f64()),
            format!("{:.2}", time[1].as_secs_f64()),
        ]);
        trials_t.note(format!(
            "n={n} shape check (PATTERN << RANDOM): {}",
            if tot[1] * 2 < tot[0] { "PASS" } else { "FAIL" }
        ));
    }
    trials_t.note("paper: n=15 -> 1187 (RANDOM) vs 383 (PATTERN); n=30 -> >13000 vs <1000");
    (trials_t, time_t)
}

/// The paper's Figure 10 commentary.
pub fn fig10_note() -> &'static str {
    "Figure 10 uses the same runs as Figure 9, measured as wall-clock time."
}
