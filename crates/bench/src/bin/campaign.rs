//! Campaign-engine benchmark: the full pipeline (suite generation →
//! pruned bipartite graph → Top-K compression → correctness execution)
//! at 1 thread vs. N threads, verifying byte-identical results and
//! reporting the wall-clock speedup plus invocation-cache statistics.
//!
//! ```text
//! campaign [--threads N] [--rules N] [--k K] [--seed S]
//! ```

use ruletest_common::Parallelism;
use ruletest_core::compress::topk;
use ruletest_core::correctness::execute_solution;
use ruletest_core::{
    build_graph_pruned, generate_suite, singleton_targets, CorrectnessReport, Framework,
    FrameworkConfig, GenConfig, Instance, Strategy, TestSuite,
};
use ruletest_executor::ExecConfig;
use ruletest_storage::tpch_database;
use std::sync::Arc;
use std::time::Instant;

struct CampaignOutcome {
    suite_sql: Vec<String>,
    edges: Vec<((usize, usize), u64)>,
    report: CorrectnessReport,
    elapsed_s: f64,
    invocations: u64,
    cache_hits: u64,
    cache_misses: u64,
}

fn run(
    db: Arc<ruletest_storage::Database>,
    threads: usize,
    rules: usize,
    k: usize,
    seed: u64,
) -> CampaignOutcome {
    let fw = Framework::over_database(db).with_parallelism(Parallelism { threads, seed });
    let t0 = Instant::now();
    let targets = singleton_targets(&fw, rules);
    let suite: TestSuite = generate_suite(
        &fw,
        targets,
        k,
        Strategy::Pattern,
        &GenConfig {
            seed,
            pad_ops: 1,
            ..Default::default()
        },
    )
    .expect("suite generation");
    let graph = build_graph_pruned(&fw, &suite).expect("graph construction");
    let inst = Instance::from_graph(&graph);
    let sol = topk(&inst).expect("compression");
    let report =
        execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).expect("execution");
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut edges: Vec<((usize, usize), u64)> = graph
        .edges
        .iter()
        .map(|(&e, &c)| (e, c.to_bits()))
        .collect();
    edges.sort();
    let stats = fw.optimizer.cache_stats();
    CampaignOutcome {
        suite_sql: suite.queries.iter().map(|q| q.sql.clone()).collect(),
        edges,
        report,
        elapsed_s,
        invocations: fw.optimizer.invocation_count(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    }
}

fn main() {
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(4);
    let mut rules = 12usize;
    let mut k = 3usize;
    let mut seed = 0xCA_4A16Eu64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a number"))
        };
        match a.as_str() {
            "--threads" => threads = num("--threads") as usize,
            "--rules" => rules = num("--rules") as usize,
            "--k" => k = num("--k") as usize,
            "--seed" => seed = num("--seed"),
            other => panic!("unknown argument {other}"),
        }
    }

    println!("campaign benchmark: {rules} rules, k={k}, seed={seed:#x}");
    let db = Arc::new(tpch_database(&FrameworkConfig::default().db).expect("tpch"));

    let single = run(db.clone(), 1, rules, k, seed);
    println!(
        "  1 thread : {:.2}s ({} optimizer invocations, cache {}h/{}m)",
        single.elapsed_s, single.invocations, single.cache_hits, single.cache_misses
    );
    let multi = run(db, threads, rules, k, seed);
    println!(
        "  {threads} threads: {:.2}s ({} optimizer invocations, cache {}h/{}m)",
        multi.elapsed_s, multi.invocations, multi.cache_hits, multi.cache_misses
    );

    // Determinism: the parallel campaign must reproduce the sequential
    // one bit for bit.
    assert_eq!(single.suite_sql, multi.suite_sql, "suite SQL diverged");
    assert_eq!(single.edges, multi.edges, "graph edge costs diverged");
    assert_eq!(
        (
            single.report.validations,
            single.report.executions,
            single.report.skipped_identical,
            single.report.skipped_expensive,
            single.report.estimated_cost.to_bits(),
            single.report.bugs.len(),
        ),
        (
            multi.report.validations,
            multi.report.executions,
            multi.report.skipped_identical,
            multi.report.skipped_expensive,
            multi.report.estimated_cost.to_bits(),
            multi.report.bugs.len(),
        ),
        "correctness report diverged"
    );
    println!("  results identical across thread counts ✓");
    println!(
        "  speedup: {:.2}x at {threads} threads",
        single.elapsed_s / multi.elapsed_s
    );
}
