//! Campaign-engine benchmark: the full pipeline (suite generation →
//! pruned bipartite graph → Top-K compression → correctness execution)
//! at 1 thread vs. N threads, verifying byte-identical results and
//! reporting the wall-clock speedup, the invocation-cache statistics, and
//! the overhead of enabling campaign telemetry. Results land in
//! `BENCH_campaign.json` (timings + the telemetry run's full `RunReport`);
//! `--metrics-json PATH` additionally writes the bare `RunReport` in the
//! format `ruletest report` consumes.
//!
//! ```text
//! campaign [--threads N] [--rules N] [--k K] [--seed S]
//!          [--metrics-json PATH] [--trace-out PATH] [--cache-dir DIR]
//! ```
//!
//! With `--cache-dir`, the telemetry run attaches the persistent
//! invocation cache: a second invocation with the same directory answers
//! its optimizer probes from disk, and `telemetry_invocations` in the
//! output JSON measures the physical compute that remained — the CI
//! warm-cache gate asserts it drops. The 1-vs-N determinism runs never
//! touch the store, so the speedup/overhead numbers stay cold-for-cold.

use ruletest_common::Parallelism;
use ruletest_core::compress::topk;
use ruletest_core::correctness::execute_solution;
use ruletest_core::{
    build_graph_pruned, final_persist, generate_suite, singleton_targets, CorrectnessReport,
    Framework, FrameworkConfig, GenConfig, Instance, Strategy, TestSuite,
};
use ruletest_executor::ExecConfig;
use ruletest_optimizer::SnapshotStore;
use ruletest_storage::tpch_database;
use ruletest_telemetry::{Json, RunReport, Telemetry};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

struct CampaignOutcome {
    suite_sql: Vec<String>,
    edges: Vec<((usize, usize), u64)>,
    report: CorrectnessReport,
    elapsed_s: f64,
    invocations: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// The aggregate telemetry report (empty sections when disabled).
    run_report: RunReport,
}

fn run(
    db: Arc<ruletest_storage::Database>,
    threads: usize,
    rules: usize,
    k: usize,
    seed: u64,
    telemetry: Telemetry,
    cache_dir: Option<&Path>,
) -> CampaignOutcome {
    let fw = Framework::over_database(db)
        .with_parallelism(Parallelism { threads, seed })
        .with_telemetry(telemetry);
    if let Some(dir) = cache_dir {
        let store = SnapshotStore::open(dir, fw.campaign_fingerprint(), None)
            .expect("opening cache snapshot");
        fw.optimizer.attach_snapshot_store(Arc::new(store));
    }
    let t0 = Instant::now();
    let targets = singleton_targets(&fw, rules);
    let suite: TestSuite = generate_suite(
        &fw,
        targets,
        k,
        Strategy::Pattern,
        &GenConfig {
            seed,
            pad_ops: 1,
            ..Default::default()
        },
    )
    .expect("suite generation");
    let graph = build_graph_pruned(&fw, &suite).expect("graph construction");
    let inst = Instance::from_graph(&graph);
    let sol = topk(&inst).expect("compression");
    let report =
        execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).expect("execution");
    if cache_dir.is_some() {
        final_persist(&fw).expect("persisting invocation cache");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut edges: Vec<((usize, usize), u64)> = graph
        .edges
        .iter()
        .map(|(&e, &c)| (e, c.to_bits()))
        .collect();
    edges.sort();
    let stats = fw.optimizer.cache_stats();
    let mut run_report = fw.run_report();
    run_report.wall_seconds = elapsed_s;
    CampaignOutcome {
        suite_sql: suite.queries.iter().map(|q| q.sql.clone()).collect(),
        edges,
        report,
        elapsed_s,
        invocations: fw.optimizer.invocation_count(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        run_report,
    }
}

fn report_fields(o: &CampaignOutcome) -> (usize, usize, usize, usize, u64, usize) {
    (
        o.report.validations,
        o.report.executions,
        o.report.skipped_identical,
        o.report.skipped_expensive,
        o.report.estimated_cost.to_bits(),
        o.report.bugs.len(),
    )
}

fn main() {
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(4);
    let mut rules = 12usize;
    let mut k = 3usize;
    let mut seed = 0xCA_4A16Eu64;
    let mut metrics_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--threads" => threads = value("--threads").parse().expect("--threads: number"),
            "--rules" => rules = value("--rules").parse().expect("--rules: number"),
            "--k" => k = value("--k").parse().expect("--k: number"),
            "--seed" => seed = value("--seed").parse().expect("--seed: number"),
            "--metrics-json" => metrics_json = Some(value("--metrics-json")),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            other => panic!("unknown argument {other}"),
        }
    }

    println!("campaign benchmark: {rules} rules, k={k}, seed={seed:#x}");
    let db = Arc::new(tpch_database(&FrameworkConfig::default().db).expect("tpch"));

    // Telemetry-disabled runs first: they must not observe the globally
    // enabled pool statistics the telemetry run switches on.
    let single = run(db.clone(), 1, rules, k, seed, Telemetry::disabled(), None);
    println!(
        "  1 thread           : {:.2}s ({} optimizer invocations, cache {}h/{}m)",
        single.elapsed_s, single.invocations, single.cache_hits, single.cache_misses
    );
    let multi = run(
        db.clone(),
        threads,
        rules,
        k,
        seed,
        Telemetry::disabled(),
        None,
    );
    println!(
        "  {threads} threads          : {:.2}s ({} optimizer invocations, cache {}h/{}m)",
        multi.elapsed_s, multi.invocations, multi.cache_hits, multi.cache_misses
    );
    let telemetry = if trace_out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::metrics_only()
    };
    let traced = run(
        db,
        threads,
        rules,
        k,
        seed,
        telemetry.clone(),
        cache_dir.as_deref().map(Path::new),
    );
    println!(
        "  {threads} threads+telemetry: {:.2}s ({} optimizer invocations, cache {}h/{}m)",
        traced.elapsed_s, traced.invocations, traced.cache_hits, traced.cache_misses
    );
    if cache_dir.is_some() {
        println!(
            "  persistent cache: {} computed this run (0 = fully warm)",
            traced.invocations
        );
    }

    // Determinism: the parallel campaign must reproduce the sequential
    // one bit for bit — and enabling telemetry must not change any result.
    assert_eq!(single.suite_sql, multi.suite_sql, "suite SQL diverged");
    assert_eq!(single.edges, multi.edges, "graph edge costs diverged");
    assert_eq!(
        report_fields(&single),
        report_fields(&multi),
        "correctness report diverged"
    );
    assert_eq!(
        single.suite_sql, traced.suite_sql,
        "telemetry changed the suite"
    );
    assert_eq!(single.edges, traced.edges, "telemetry changed edge costs");
    assert_eq!(
        report_fields(&single),
        report_fields(&traced),
        "telemetry changed the correctness report"
    );
    println!("  results identical across thread counts and telemetry ✓");
    let speedup = single.elapsed_s / multi.elapsed_s;
    let overhead_pct = (traced.elapsed_s - multi.elapsed_s) / multi.elapsed_s * 100.0;
    println!("  speedup: {speedup:.2}x at {threads} threads");
    println!("  telemetry overhead: {overhead_pct:+.1}% (target < 3%)");
    traced
        .run_report
        .check()
        .expect("telemetry run report failed its self-check");

    let doc = Json::obj(vec![
        ("bench", Json::str("campaign")),
        ("threads", Json::count(threads as u64)),
        ("rules", Json::count(rules as u64)),
        ("k", Json::count(k as u64)),
        ("seed", Json::count(seed)),
        ("single_thread_s", Json::num(single.elapsed_s)),
        ("multi_thread_s", Json::num(multi.elapsed_s)),
        ("telemetry_s", Json::num(traced.elapsed_s)),
        ("speedup", Json::num(speedup)),
        ("telemetry_overhead_pct", Json::num(overhead_pct)),
        ("invocations", Json::count(multi.invocations)),
        // Physical computes in the telemetry run — with --cache-dir this
        // is what the disk cache could not answer (the warm-cache CI gate
        // asserts it collapses on a second run).
        ("telemetry_invocations", Json::count(traced.invocations)),
        ("cache_hits", Json::count(multi.cache_hits)),
        ("cache_misses", Json::count(multi.cache_misses)),
        ("run_report", traced.run_report.to_json()),
    ]);
    std::fs::write("BENCH_campaign.json", doc.to_string_pretty()).expect("writing bench json");
    println!("  wrote BENCH_campaign.json");
    if let Some(path) = metrics_json {
        // A plain RunReport document, consumable by `ruletest report`.
        std::fs::write(&path, traced.run_report.to_json().to_string_pretty())
            .expect("writing metrics json");
        println!("  wrote {path}");
    }
    if let Some(path) = trace_out {
        let file = std::fs::File::create(&path).expect("creating trace file");
        let mut out = std::io::BufWriter::new(file);
        telemetry.export_trace(&mut out).expect("writing trace");
        println!(
            "  wrote {path} ({} events)",
            telemetry.trace_stats().recorded
        );
    }
}
