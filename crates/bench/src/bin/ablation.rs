//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Pair composition schemes** (§3.2): individual patterns only vs.
//!    root composition only vs. substitution only vs. the full candidate
//!    set — measured in trials to find a pair-exercising query.
//! 2. **Pattern padding**: trials and resulting query size as the §2.3
//!    operator-count constraint grows.
//!
//! Run with: `cargo run --release -p ruletest-bench --bin ablation`

use ruletest_bench::FigureTable;
use ruletest_common::Rng;
use ruletest_core::generate::pairs::compose_patterns;
use ruletest_core::generate::pattern::{instantiate_pattern, pad_above};
use ruletest_core::{Framework, FrameworkConfig, GenConfig, Strategy};
use ruletest_logical::IdGen;
use ruletest_optimizer::PatternTree;

/// Trial loop over an explicit candidate list (mirrors the framework's
/// PATTERN loop so schemes can be ablated independently).
fn trials_with_candidates(
    fw: &Framework,
    targets: &[ruletest_common::RuleId],
    candidates: &[PatternTree],
    seed: u64,
    cap: usize,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let mut rng = Rng::new(seed);
    for trial in 1..=cap {
        let mut ids = IdGen::new();
        let pattern = &candidates[(trial - 1) % candidates.len()];
        let Some(built) = instantiate_pattern(&fw.db, &mut rng, &mut ids, pattern) else {
            continue;
        };
        let Ok(res) = fw.optimizer.optimize(&built.tree) else {
            continue;
        };
        if targets.iter().all(|t| res.rule_set.contains(t)) {
            return Some(trial);
        }
    }
    None
}

fn composition_ablation(fw: &Framework) -> FigureTable {
    let rules = fw.optimizer.exploration_rule_ids();
    let mut pairs = Vec::new();
    for i in 0..12usize {
        for j in (i + 1)..12 {
            pairs.push((rules[i], rules[j]));
        }
    }
    const CAP: usize = 150;
    let mut t = FigureTable::new(
        "Ablation: pair-composition candidate schemes (total trials, 66 pairs, capped at 150)",
        &["scheme", "total trials", "pairs found", "pairs capped"],
    );
    let schemes: Vec<(
        &str,
        Box<dyn Fn(&PatternTree, &PatternTree) -> Vec<PatternTree>>,
    )> = vec![
        ("singles only", Box::new(|a, b| vec![a.clone(), b.clone()])),
        (
            "root composition only",
            Box::new(|a, b| {
                vec![
                    PatternTree::join(
                        vec![ruletest_logical::JoinKind::Inner],
                        a.clone(),
                        b.clone(),
                    ),
                    PatternTree::kind(
                        ruletest_logical::OpKind::UnionAll,
                        vec![a.clone(), b.clone()],
                    ),
                ]
            }),
        ),
        (
            "substitution only",
            Box::new(|a, b| {
                let mut out = Vec::new();
                for path in a.placeholder_paths() {
                    out.push(ruletest_core::generate::pairs::substitute_at(a, &path, b));
                }
                for path in b.placeholder_paths() {
                    out.push(ruletest_core::generate::pairs::substitute_at(b, &path, a));
                }
                out
            }),
        ),
        (
            "full (singles + composites)",
            Box::new(|a, b| {
                let mut out = vec![a.clone(), b.clone()];
                out.extend(compose_patterns(a, b));
                out
            }),
        ),
    ];
    for (name, scheme) in schemes {
        let mut total = 0usize;
        let mut found = 0usize;
        let mut capped = 0usize;
        for (pi, (a, b)) in pairs.iter().enumerate() {
            let candidates = scheme(fw.optimizer.rule_pattern(*a), fw.optimizer.rule_pattern(*b));
            match trials_with_candidates(fw, &[*a, *b], &candidates, 0xAB7 + pi as u64, CAP) {
                Some(n) => {
                    total += n;
                    found += 1;
                }
                None => {
                    total += CAP;
                    capped += 1;
                }
            }
        }
        t.row(vec![
            name.to_string(),
            total.to_string(),
            found.to_string(),
            capped.to_string(),
        ]);
    }
    t.note("the paper's §3.2 composition plus the rule-dependency shortcut (singles first) should dominate");
    t
}

fn padding_ablation(fw: &Framework) -> FigureTable {
    let rule = fw
        .optimizer
        .rule_id("EagerGbAggPushBelowJoinLeft")
        .expect("EagerGbAggPushBelowJoinLeft is in the standard catalog");
    let mut t = FigureTable::new(
        "Ablation: operator-count padding of pattern queries (§2.3 constraint)",
        &[
            "pad ops",
            "avg trials",
            "avg query ops",
            "avg optimize exprs",
        ],
    );
    for pad in [0usize, 2, 4, 6, 8] {
        let mut trials = 0usize;
        let mut ops = 0usize;
        let mut exprs = 0usize;
        const N: usize = 20;
        for i in 0..N {
            let cfg = GenConfig {
                seed: 0x9AD + i as u64,
                pad_ops: pad,
                max_trials: 100,
                ..Default::default()
            };
            let Ok(out) = fw.find_query_for_rule(rule, Strategy::Pattern, &cfg) else {
                continue;
            };
            trials += out.trials;
            ops += out.ops;
            exprs += fw
                .optimizer
                .optimize(&out.query)
                .map(|r| r.exprs)
                .unwrap_or(0);
        }
        t.row(vec![
            pad.to_string(),
            format!("{:.1}", trials as f64 / 20.0),
            format!("{:.1}", ops as f64 / 20.0),
            format!("{:.0}", exprs as f64 / 20.0),
        ]);
    }
    t.note("padding buys complex correctness-suite queries at a modest trial cost");
    t
}

fn pad_demo(fw: &Framework) {
    // Exercise pad_above directly so the public helper stays covered.
    let rule = fw
        .optimizer
        .rule_id("SelectMerge")
        .expect("SelectMerge is in the standard catalog");
    let mut rng = Rng::new(7);
    let mut ids = IdGen::new();
    let built = instantiate_pattern(&fw.db, &mut rng, &mut ids, fw.optimizer.rule_pattern(rule))
        .expect("instantiation");
    let padded = pad_above(&fw.db, &mut rng, &mut ids, built, 4);
    println!(
        "(pad_above demo: {}-operator query built around SelectMerge)\n",
        padded.tree.op_count()
    );
}

fn main() {
    let fw = Framework::new(&FrameworkConfig::default()).expect("framework");
    pad_demo(&fw);
    println!("{}", composition_ablation(&fw).render());
    println!("{}", padding_ablation(&fw).render());
}
