//! Regenerates every figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [--seed N] [--out DIR] [fig8|fig9|fig10|fig11|fig12|fig13|fig14|all]
//! ```

use ruletest_bench::figures::{self, ReproConfig};
use ruletest_bench::FigureTable;
use std::time::Instant;

fn main() {
    let mut cfg = ReproConfig::default();
    let mut which: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => {
                cfg.out_dir = args.next().expect("--out needs a path").into();
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    let all = which.iter().any(|w| w == "all");
    let wants = |f: &str| all || which.iter().any(|w| w == f);

    println!(
        "ruletest figure reproduction (seed={:#x}, {} mode)\n",
        cfg.seed,
        if cfg.quick { "quick" } else { "full" }
    );

    let emit = |t: &FigureTable, file: &str| {
        println!("{}", t.render());
        let path = cfg.out_dir.join(file);
        if let Err(e) = t.write_csv(&path) {
            eprintln!("(csv write to {} failed: {e})", path.display());
        } else {
            println!("  [csv -> {}]\n", path.display());
        }
    };

    let t0 = Instant::now();
    if wants("fig8") {
        emit(&figures::fig8(&cfg), "fig8.csv");
    }
    if wants("fig9") || wants("fig10") {
        let (f9, f10) = figures::fig9_and_10(&cfg);
        if wants("fig9") {
            emit(&f9, "fig9.csv");
        }
        if wants("fig10") {
            emit(&f10, "fig10.csv");
            println!("  {}\n", figures::fig10_note());
        }
    }
    if wants("fig11") {
        emit(&figures::fig11(&cfg), "fig11.csv");
    }
    if wants("fig12") {
        emit(&figures::fig12(&cfg), "fig12.csv");
    }
    if wants("fig13") {
        emit(&figures::fig13(&cfg), "fig13.csv");
    }
    if wants("fig14") {
        emit(&figures::fig14(&cfg), "fig14.csv");
    }
    println!("total: {:.1}s", t0.elapsed().as_secs_f64());
}
