//! Dependency-free micro-benchmark harness (`std::time`).
//!
//! The workspace must resolve and build completely offline, so `criterion`
//! cannot be a (even optional) manifest dependency — cargo contacts the
//! registry to resolve optional dependencies too. The benches therefore
//! run on this minimal harness by default. The non-default
//! `criterion-bench` feature is the declared hook for plugging a vendored
//! criterion back in; with the stock tree it selects the same harness, so
//! `cargo bench --features criterion-bench` stays green.
//!
//! Methodology: each benchmark is calibrated so one sample lasts roughly
//! [`TARGET_SAMPLE`], then `sample_size` samples are measured and the
//! per-iteration min / median / mean are reported. Results go to stdout
//! in a stable one-line-per-bench format that diffing tools can consume.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Desired wall-clock duration of one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// A named group of benchmarks, mirroring the criterion `benchmark_group`
/// surface the old benches used.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
}

/// Starts a benchmark group.
pub fn group(name: &str) -> BenchGroup {
    BenchGroup {
        name: name.to_string(),
        sample_size: 20,
    }
}

impl BenchGroup {
    /// Number of measured samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: calibrates an iteration count, measures
    /// `sample_size` samples, prints per-iteration statistics.
    pub fn bench<R, F: FnMut() -> R>(&mut self, id: &str, mut f: F) {
        // Warm-up + calibration: grow the iteration count until one
        // sample is long enough to time reliably.
        let mut iters = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                break elapsed / iters as u32;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                // Aim directly for the target, padded by 2x for noise.
                let scale = TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1) + 1;
                (iters * scale.min(16) as u64 * 2).min(1 << 20)
            };
        };
        let _ = per_iter;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed() / iters as u32);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "bench {}/{id}: median {} (min {}, mean {}, {} samples x {} iters)",
            self.name,
            fmt(median),
            fmt(min),
            fmt(mean),
            samples.len(),
            iters,
        );
    }

    /// Criterion-compatibility shim; statistics print as benches run.
    pub fn finish(&mut self) {}
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = group("harness-selftest");
        g.sample_size(3);
        let mut n = 0u64;
        g.bench("incr", || {
            n = n.wrapping_add(1);
            n
        });
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt(Duration::from_micros(12)), "12.000us");
        assert_eq!(fmt(Duration::from_millis(12)), "12.000ms");
        assert_eq!(fmt(Duration::from_secs(2)), "2.000s");
    }
}
