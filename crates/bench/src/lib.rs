//! Benchmark harness: regenerates every figure of the paper's evaluation
//! (§6, Figures 8–14) on the Rust substrate.
//!
//! Absolute numbers differ from the paper (their substrate was Microsoft
//! SQL Server on a 2009 testbed; ours is the sibling crates' optimizer and
//! executor), but the *shapes* — who wins, by roughly what factor, and
//! where methods degrade — are the reproduction target. EXPERIMENTS.md
//! records paper-vs-measured values for each figure.

pub mod figures;
pub mod harness;
pub mod table;

pub use table::FigureTable;
