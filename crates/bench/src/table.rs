//! Plain-text table rendering and CSV output for the figure harness.

use std::fmt::Write as _;
use std::path::Path;

/// A figure's data: header row plus data rows, printable and CSV-writable.
#[derive(Debug, Clone)]
pub struct FigureTable {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (totals, shape checks).
    pub notes: Vec<String>,
}

impl FigureTable {
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  {n}");
        }
        out
    }

    /// Writes the table (without notes) as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            s,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        std::fs::write(path, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table_with_notes() {
        let mut t = FigureTable::new("Demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["22".into(), "yy".into()]);
        t.note("total = 3");
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a   long_column"));
        assert!(s.contains("total = 3"));
    }

    #[test]
    fn csv_escapes_commas() {
        let dir = std::env::temp_dir().join("ruletest_table_test");
        let path = dir.join("t.csv");
        let mut t = FigureTable::new("x", &["name", "v"]);
        t.row(vec!["a,b".into(), "1".into()]);
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"a,b\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
