//! Cardinality estimation and the cost model.
//!
//! Estimates are deliberately simple, deterministic functions of the
//! operator and its children's estimates. Two properties matter for the
//! testing framework (and are property-tested):
//!
//! 1. **Determinism** — the same physical tree always gets the same cost,
//!    regardless of which rule mask produced it.
//! 2. **Monotonicity under masking** — since disabling rules only removes
//!    alternatives from the search space, and a tree's cost is computed
//!    from the tree alone, `Cost(q) <= Cost(q, ¬R)` (the invariant behind
//!    the paper's factor-2 proof in §5.2 and the pruning in §5.3.1).

use crate::physical::PhysOp;
use ruletest_expr::{conjuncts, try_col_eq_col, BinOp, Expr};
use ruletest_logical::{JoinKind, Operator, Schema};
use ruletest_storage::Database;

/// Heuristic selectivity of a predicate (no per-column histograms; fixed
/// factors per conjunct shape, floored to stay positive).
pub fn selectivity(pred: &Expr) -> f64 {
    let parts = conjuncts(pred);
    if parts.is_empty() {
        return 1.0;
    }
    let s: f64 = parts.iter().map(conjunct_selectivity).product();
    s.max(1e-3)
}

fn conjunct_selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Lit(v) => match v {
            ruletest_common::Value::Bool(true) => 1.0,
            ruletest_common::Value::Bool(false) => 1e-3,
            _ => 0.5,
        },
        Expr::Col(_) => 0.5,
        Expr::IsNull(_) => 0.1,
        Expr::Not(inner) => (1.0 - conjunct_selectivity(inner)).max(1e-3),
        Expr::Bin { op, left, right } => match op {
            BinOp::Eq => {
                if try_col_eq_col(e).is_some() {
                    0.2
                } else if matches!(left.as_ref(), Expr::Col(_))
                    || matches!(right.as_ref(), Expr::Col(_))
                {
                    0.1
                } else {
                    0.3
                }
            }
            BinOp::Ne => 0.9,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 0.33,
            BinOp::And => conjunct_selectivity(left) * conjunct_selectivity(right),
            BinOp::Or => {
                let a = conjunct_selectivity(left);
                let b = conjunct_selectivity(right);
                (a + b - a * b).min(1.0)
            }
            _ => 0.25,
        },
    }
}

/// Splits a join predicate into cross-side equi conjuncts and the rest,
/// given the set of left-side column ids.
pub fn split_equi_conjuncts(
    pred: &Expr,
    left: &Schema,
    right: &Schema,
) -> (
    Vec<(ruletest_common::ColId, ruletest_common::ColId)>,
    Vec<Expr>,
) {
    let in_left = |c: ruletest_common::ColId| left.iter().any(|ci| ci.id == c);
    let in_right = |c: ruletest_common::ColId| right.iter().any(|ci| ci.id == c);
    let mut keys = Vec::new();
    let mut rest = Vec::new();
    for part in conjuncts(pred) {
        match try_col_eq_col(&part) {
            Some((a, b)) if in_left(a) && in_right(b) => keys.push((a, b)),
            Some((a, b)) if in_right(a) && in_left(b) => keys.push((b, a)),
            _ => rest.push(part),
        }
    }
    (keys, rest)
}

/// Estimated output rows of a join, from its kind, predicate, and input
/// estimates.
pub fn join_rows(
    kind: JoinKind,
    pred: &Expr,
    left: &Schema,
    right: &Schema,
    l: f64,
    r: f64,
) -> f64 {
    let (keys, rest) = split_equi_conjuncts(pred, left, right);
    let inner = if keys.is_empty() {
        (l * r * selectivity(pred)).max(1.0)
    } else {
        // First equi key joins roughly FK-style; extra conjuncts filter.
        let base = l.max(r);
        let extra = 0.7f64.powi((keys.len() - 1) as i32)
            * rest
                .iter()
                .map(conjunct_selectivity)
                .product::<f64>()
                .max(1e-3);
        (base * extra).max(1.0)
    };
    match kind {
        JoinKind::Inner => inner,
        JoinKind::LeftOuter => inner.max(l),
        JoinKind::RightOuter => inner.max(r),
        JoinKind::FullOuter => inner.max(l).max(r),
        JoinKind::LeftSemi => (l * 0.5).max(1.0),
        JoinKind::LeftAnti => (l * 0.5).max(1.0),
    }
}

/// Estimated output rows of a logical operator.
pub fn estimate_rows(db: &Database, op: &Operator, children: &[&Schema], rows: &[f64]) -> f64 {
    match op {
        Operator::Get { table, .. } => db
            .stats(*table)
            .map(|s| s.row_count as f64)
            .unwrap_or(1000.0),
        Operator::Select { predicate } => (rows[0] * selectivity(predicate)).max(1.0),
        Operator::Project { .. } => rows[0],
        Operator::Join { kind, predicate } => {
            join_rows(*kind, predicate, children[0], children[1], rows[0], rows[1])
        }
        Operator::GbAgg { group_by, .. } => {
            if group_by.is_empty() {
                1.0
            } else {
                rows[0].powf(0.75).max(1.0)
            }
        }
        Operator::UnionAll { .. } => rows[0] + rows[1],
        Operator::Distinct => (rows[0] * 0.6).max(1.0),
        Operator::Sort { .. } => rows[0],
        Operator::Top { n, .. } => (*n as f64).min(rows[0]).max(1.0),
    }
}

fn log2(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Estimated output rows of a physical operator (mirrors the logical
/// estimates so a plan's estimates depend only on the plan tree).
pub fn phys_rows(db: &Database, op: &PhysOp, child_schemas: &[&Schema], child_rows: &[f64]) -> f64 {
    match op {
        PhysOp::SeqScan { table, .. } => db
            .stats(*table)
            .map(|s| s.row_count as f64)
            .unwrap_or(1000.0),
        PhysOp::IndexSeek { residual, .. } => (selectivity(residual) * 2.0).max(1.0),
        PhysOp::Filter { predicate } => (child_rows[0] * selectivity(predicate)).max(1.0),
        PhysOp::Compute { .. } => child_rows[0],
        PhysOp::NLJoin { kind, predicate } => join_rows(
            *kind,
            predicate,
            child_schemas[0],
            child_schemas[1],
            child_rows[0],
            child_rows[1],
        ),
        PhysOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            // Reconstruct the logical predicate estimate from keys+residual.
            let mut pred = residual.clone();
            for (l, r) in left_keys.iter().zip(right_keys) {
                pred = Expr::and(pred, Expr::eq(Expr::col(*l), Expr::col(*r)));
            }
            join_rows(
                *kind,
                &pred,
                child_schemas[0],
                child_schemas[1],
                child_rows[0],
                child_rows[1],
            )
        }
        PhysOp::MergeJoin {
            left_key,
            right_key,
            residual,
        } => {
            let pred = Expr::and(
                residual.clone(),
                Expr::eq(Expr::col(*left_key), Expr::col(*right_key)),
            );
            join_rows(
                JoinKind::Inner,
                &pred,
                child_schemas[0],
                child_schemas[1],
                child_rows[0],
                child_rows[1],
            )
        }
        PhysOp::HashAgg { group_by, .. } | PhysOp::StreamAgg { group_by, .. } => {
            if group_by.is_empty() {
                1.0
            } else {
                child_rows[0].powf(0.75).max(1.0)
            }
        }
        PhysOp::Concat { .. } => child_rows[0] + child_rows[1],
        PhysOp::HashDistinct => (child_rows[0] * 0.6).max(1.0),
        PhysOp::SortOp { .. } => child_rows[0],
        PhysOp::TopN { n, .. } => (*n as f64).min(child_rows[0]).max(1.0),
    }
}

/// Total cost of a physical node given its children's total costs.
///
/// Nested-loops re-scans its inner side once per outer row — the classic
/// `cost(outer) + |outer| * cost(inner)` — which is what makes disabling
/// the hash-join rule genuinely expensive (§4.1's observation that
/// `Cost(q, ¬r)` can far exceed `Cost(q)`).
pub fn phys_cost(op: &PhysOp, child_rows: &[f64], child_costs: &[f64], out_rows: f64) -> f64 {
    let own = match op {
        PhysOp::SeqScan { .. } => out_rows,
        PhysOp::IndexSeek { .. } => 4.0 + out_rows,
        PhysOp::Filter { .. } => child_rows[0] * 0.1,
        PhysOp::Compute { .. } => child_rows[0] * 0.1,
        PhysOp::NLJoin { .. } => child_rows[0] * child_rows[1] * 0.2 + out_rows * 0.05,
        PhysOp::HashJoin { .. } => child_rows[1] * 2.0 + child_rows[0] * 1.2 + out_rows * 0.05,
        PhysOp::MergeJoin { .. } => {
            child_rows[0] * log2(child_rows[0]) * 0.3
                + child_rows[1] * log2(child_rows[1]) * 0.3
                + (child_rows[0] + child_rows[1]) * 0.5
        }
        PhysOp::HashAgg { .. } => child_rows[0] * 2.0,
        PhysOp::StreamAgg { .. } => child_rows[0] * log2(child_rows[0]) * 0.3 + child_rows[0] * 0.5,
        PhysOp::Concat { .. } => (child_rows[0] + child_rows[1]) * 0.05,
        PhysOp::HashDistinct => child_rows[0] * 1.5,
        PhysOp::SortOp { .. } => child_rows[0] * log2(child_rows[0]) * 0.3,
        PhysOp::TopN { n, .. } => child_rows[0] * log2(*n as f64 + 2.0) * 0.2,
    };
    let children: f64 = match op {
        PhysOp::NLJoin { .. } => child_costs[0] + child_rows[0].max(1.0) * child_costs[1],
        _ => child_costs.iter().sum(),
    };
    own + children
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_common::ColId;
    use ruletest_logical::ColumnInfo;
    use ruletest_storage::{tpch_database, TpchConfig};

    fn schema(ids: &[u32]) -> Schema {
        ids.iter()
            .map(|&i| ColumnInfo {
                id: ColId(i),
                data_type: ruletest_common::DataType::Int,
                nullable: false,
            })
            .collect()
    }

    #[test]
    fn selectivity_bounds() {
        let eq = Expr::eq(Expr::col(ColId(0)), Expr::lit(5i64));
        assert!(selectivity(&eq) > 0.0 && selectivity(&eq) < 1.0);
        assert_eq!(selectivity(&Expr::true_lit()), 1.0);
        let multi = Expr::and(eq.clone(), eq.clone());
        assert!(selectivity(&multi) <= selectivity(&eq));
        assert!(selectivity(&Expr::lit(false)) >= 1e-3);
    }

    #[test]
    fn equi_split_normalizes_sides() {
        let left = schema(&[1, 2]);
        let right = schema(&[3, 4]);
        // c3 = c1 is written right-to-left; split must normalize.
        let pred = Expr::and(
            Expr::eq(Expr::col(ColId(3)), Expr::col(ColId(1))),
            Expr::bin(BinOp::Lt, Expr::col(ColId(2)), Expr::lit(9i64)),
        );
        let (keys, rest) = split_equi_conjuncts(&pred, &left, &right);
        assert_eq!(keys, vec![(ColId(1), ColId(3))]);
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn same_side_equality_is_not_a_join_key() {
        let left = schema(&[1, 2]);
        let right = schema(&[3]);
        let pred = Expr::eq(Expr::col(ColId(1)), Expr::col(ColId(2)));
        let (keys, rest) = split_equi_conjuncts(&pred, &left, &right);
        assert!(keys.is_empty());
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn join_rows_cross_vs_equi() {
        let left = schema(&[1]);
        let right = schema(&[2]);
        let cross = join_rows(
            JoinKind::Inner,
            &Expr::true_lit(),
            &left,
            &right,
            100.0,
            50.0,
        );
        assert_eq!(cross, 5000.0);
        let equi = join_rows(
            JoinKind::Inner,
            &Expr::eq(Expr::col(ColId(1)), Expr::col(ColId(2))),
            &left,
            &right,
            100.0,
            50.0,
        );
        assert!(equi < cross);
        let outer = join_rows(
            JoinKind::LeftOuter,
            &Expr::eq(Expr::col(ColId(1)), Expr::col(ColId(2))),
            &left,
            &right,
            100.0,
            50.0,
        );
        assert!(outer >= 100.0, "outer join preserves the left side");
    }

    #[test]
    fn nl_join_costs_more_than_hash_on_large_inputs() {
        let nl = PhysOp::NLJoin {
            kind: JoinKind::Inner,
            predicate: Expr::true_lit(),
        };
        let hash = PhysOp::HashJoin {
            kind: JoinKind::Inner,
            left_keys: vec![ColId(1)],
            right_keys: vec![ColId(2)],
            residual: Expr::true_lit(),
        };
        let nl_cost = phys_cost(&nl, &[1000.0, 1000.0], &[1000.0, 1000.0], 1000.0);
        let hash_cost = phys_cost(&hash, &[1000.0, 1000.0], &[1000.0, 1000.0], 1000.0);
        assert!(nl_cost > 10.0 * hash_cost);
    }

    #[test]
    fn estimate_rows_uses_table_stats() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        let op = Operator::Get {
            table: ruletest_common::TableId(0),
            cols: vec![],
        };
        let est = estimate_rows(&db, &op, &[], &[]);
        assert_eq!(est, TpchConfig::default().regions as f64);
    }

    #[test]
    fn scalar_agg_estimates_one_row() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        let scalar = Operator::GbAgg {
            group_by: vec![],
            aggs: vec![],
        };
        let s = schema(&[1]);
        assert_eq!(estimate_rows(&db, &scalar, &[&s], &[500.0]), 1.0);
        let grouped = Operator::GbAgg {
            group_by: vec![ColId(1)],
            aggs: vec![],
        };
        let g = estimate_rows(&db, &grouped, &[&s], &[500.0]);
        assert!(g > 1.0 && g < 500.0);
    }

    #[test]
    fn costs_are_positive_and_include_children() {
        let filter = PhysOp::Filter {
            predicate: Expr::true_lit(),
        };
        let c = phys_cost(&filter, &[100.0], &[250.0], 100.0);
        assert!(c > 250.0);
    }
}
