//! The optimization driver: exploration to a fixpoint, then cost-based
//! plan extraction — with the three testing extensions (rule tracing, rule
//! masking, pattern export) the framework requires (§2.3).

use crate::cache::{CacheKey, CacheStats, OptCache};
use crate::cost::phys_cost;
use crate::mask::RuleMask;
use crate::memo::{GroupId, Memo};
use crate::pattern::{OpMatcher, PatternTree};
use crate::persist::SnapshotStore;
use crate::physical::{PhysOp, PhysicalPlan};
use crate::rule::{newtree_from_logical, Bound, BoundChild, Rule, RuleAction, RuleCtx, RuleKind};
use crate::rules::exploration_rules;
use crate::rules_impl::implementation_rules;
use ruletest_common::{Error, Result, RuleId};
use ruletest_expr::Expr;
use ruletest_logical::{
    derive_schema, output_schema, IdGen, JoinKind, LogicalTree, Operator, Schema,
};
use ruletest_storage::Database;
use ruletest_telemetry::{Counter, Event, Hist, ProfileSample, RulePhase, Telemetry};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Search budgets and the rule mask for one optimization.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Disabled rules (`¬R`); empty for `Plan(q)`.
    pub mask: RuleMask,
    /// Safety cap on total memo expressions; exceeding it sets
    /// [`OptimizeResult::truncated`].
    pub max_exprs: usize,
    /// Safety cap on exploration passes.
    pub max_passes: usize,
    /// Hard memo-growth cap: exceeding it *fails* the invocation with
    /// `Error::Budget` instead of truncating. `None` (the default) keeps
    /// the graceful truncation behavior. The supervision layer uses this
    /// to turn a rule that floods the memo into a quarantinable
    /// `Failure::BudgetExhausted` rather than a silently weaker search.
    pub hard_max_exprs: Option<usize>,
    /// Cooperative wall-clock deadline, checked at pass and
    /// task-expansion boundaries. Unarmed by default. Deliberately **not**
    /// part of [`CacheKey`]: wall-clock state must never address cached
    /// results (a timed-out compute is an error and is never cached).
    pub deadline: ruletest_common::Deadline,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            mask: RuleMask::all_enabled(),
            // Large enough that the fixpoint is reached for the padded
            // pattern queries correctness suites use; large random
            // multi-join queries may truncate (industrial optimizers prune
            // their search too).
            max_exprs: 3_000,
            max_passes: 64,
            hard_max_exprs: None,
            deadline: ruletest_common::Deadline::none(),
        }
    }
}

impl OptimizerConfig {
    /// All rules enabled.
    pub fn all_enabled() -> Self {
        Self::default()
    }

    /// Disabling exactly `rules`.
    pub fn disabling(rules: &[RuleId]) -> Self {
        Self {
            mask: RuleMask::disabling(rules),
            ..Self::default()
        }
    }
}

/// The outcome of optimizing one query.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// `Plan(q)` (or `Plan(q, ¬R)` under a mask).
    pub plan: PhysicalPlan,
    /// `Cost(q)` — the plan's estimated cost in optimizer units.
    pub cost: f64,
    /// `RuleSet(q)`: every rule exercised during this optimization.
    pub rule_set: BTreeSet<RuleId>,
    /// Observed rule dependencies (§7's second interaction flavor): a pair
    /// `(r1, r2)` records that r2 fired on an expression r1 had created.
    pub rule_dependencies: BTreeSet<(RuleId, RuleId)>,
    /// Memo size diagnostics.
    pub groups: usize,
    pub exprs: usize,
    /// True if a search budget was hit (the plan is still valid, the
    /// exploration just stopped early).
    pub truncated: bool,
}

impl OptimizeResult {
    /// Exercised rules restricted to exploration rules.
    pub fn exercised(&self, optimizer: &Optimizer) -> BTreeSet<RuleId> {
        self.rule_set
            .iter()
            .copied()
            .filter(|&r| optimizer.rule(r).kind == RuleKind::Exploration)
            .collect()
    }
}

/// The rule-based optimizer.
pub struct Optimizer {
    db: Arc<Database>,
    rules: Vec<Rule>,
    by_name: HashMap<&'static str, RuleId>,
    /// Exploration-rule indexes whose pattern root can match each OpKind —
    /// avoids testing all rules against every expression.
    explore_by_kind: HashMap<ruletest_logical::OpKind, Vec<usize>>,
    /// Same for implementation rules.
    implement_by_kind: HashMap<ruletest_logical::OpKind, Vec<usize>>,
    invocations: AtomicU64,
    /// Invocation cache for the `optimize*_cached` entry points; shared
    /// across every campaign phase that goes through this optimizer.
    cache: OptCache,
    /// Campaign telemetry, attached once (through the `Arc`) by whoever
    /// owns the campaign; never attached → every recording site is a
    /// near-no-op branch.
    telemetry: OnceLock<Telemetry>,
    /// Disk-backed warm store (`--cache-dir`), attached once like
    /// telemetry; never attached → the cached path never touches disk.
    store: OnceLock<Arc<SnapshotStore>>,
    /// Injected sink for memo dumps; `None` falls back to stderr when the
    /// `RULETEST_DUMP_MEMO` environment variable requests dumps.
    memo_sink: Mutex<Option<Box<dyn Write + Send>>>,
    /// Debug-mode static auditor run on every exploration substitute
    /// before it is inserted into the memo (see the `ruletest-lint`
    /// crate); `None` (the default) costs one branch per rule firing.
    auditor: Mutex<Option<Arc<dyn SubstituteAuditor>>>,
}

/// Hook for statically auditing rule substitutes as they are produced,
/// before memo insertion. Implemented by the lint crate's online auditor;
/// kept as a trait here so the optimizer does not depend on it.
pub trait SubstituteAuditor: Send + Sync {
    /// Inspects one substitute `rule_name` produced for the match `bound`
    /// and returns the number of violations found (zero when clean); the
    /// optimizer feeds the count into telemetry.
    fn audit(
        &self,
        db: &Database,
        memo: &Memo,
        bound: &Bound,
        rule_name: &str,
        substitute: &crate::rule::NewTree,
    ) -> usize;
}

/// Tree-only fingerprint used to correlate trace events (cache lookups
/// and invocations on the same query share it; the mask does not feed it).
fn tree_fingerprint(tree: &LogicalTree) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    tree.hash(&mut h);
    h.finish()
}

impl Optimizer {
    /// Builds the optimizer with the full rule catalog over `db`.
    pub fn new(db: Arc<Database>) -> Self {
        let mut rules = exploration_rules();
        rules.extend(implementation_rules());
        Self::with_rules(db, rules)
    }

    /// Builds the optimizer with the standard catalog, but with any rule
    /// whose name matches an override replaced by the override. This is the
    /// fault-injection hook the testing framework uses to demonstrate that
    /// correctness validation detects incorrectly implemented rules.
    pub fn new_with_overrides(db: Arc<Database>, overrides: Vec<Rule>) -> Self {
        let mut rules = exploration_rules();
        rules.extend(implementation_rules());
        for over in overrides {
            if let Some(slot) = rules.iter_mut().find(|r| r.name == over.name) {
                *slot = over;
            } else {
                rules.push(over);
            }
        }
        Self::with_rules(db, rules)
    }

    fn with_rules(db: Arc<Database>, rules: Vec<Rule>) -> Self {
        let by_name = rules
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name, RuleId(i as u16)))
            .collect();
        use ruletest_logical::OpKind;
        const ALL_KINDS: [OpKind; 9] = [
            OpKind::Get,
            OpKind::Select,
            OpKind::Project,
            OpKind::Join,
            OpKind::GbAgg,
            OpKind::UnionAll,
            OpKind::Distinct,
            OpKind::Sort,
            OpKind::Top,
        ];
        let mut explore_by_kind: HashMap<OpKind, Vec<usize>> = HashMap::new();
        let mut implement_by_kind: HashMap<OpKind, Vec<usize>> = HashMap::new();
        for kind in ALL_KINDS {
            for (i, r) in rules.iter().enumerate() {
                let root_accepts = match &r.pattern {
                    PatternTree::Op { matcher, .. } => match matcher {
                        OpMatcher::Kind(k) => *k == kind,
                        OpMatcher::Join(_) => kind == OpKind::Join,
                    },
                    PatternTree::Any => true,
                };
                if root_accepts {
                    match r.kind {
                        RuleKind::Exploration => explore_by_kind.entry(kind).or_default().push(i),
                        RuleKind::Implementation => {
                            implement_by_kind.entry(kind).or_default().push(i)
                        }
                    }
                }
            }
        }
        Self {
            db,
            rules,
            by_name,
            explore_by_kind,
            implement_by_kind,
            invocations: AtomicU64::new(0),
            cache: OptCache::default(),
            telemetry: OnceLock::new(),
            store: OnceLock::new(),
            memo_sink: Mutex::new(None),
            auditor: Mutex::new(None),
        }
    }

    /// Attaches campaign telemetry. The first attachment wins; later calls
    /// are ignored. Takes `&self` so it works through an `Arc<Optimizer>`.
    pub fn attach_telemetry(&self, telemetry: Telemetry) {
        let _ = self.telemetry.set(telemetry);
    }

    /// The attached telemetry handle, or a disabled (no-op) one.
    pub fn telemetry(&self) -> &Telemetry {
        static DISABLED: Telemetry = Telemetry::disabled();
        self.telemetry.get().unwrap_or(&DISABLED)
    }

    /// Attaches the disk-backed warm store. The first attachment wins.
    /// A store whose on-disk snapshot was fingerprint-rejected is still
    /// attached (it starts cold and overwrites the stale snapshot on
    /// save); the rejection is counted so reports surface it. Attach
    /// telemetry first for the rejection counter to land.
    pub fn attach_snapshot_store(&self, store: Arc<SnapshotStore>) {
        if store.rejected() {
            self.telemetry().incr(Counter::CacheFingerprintRejected);
        }
        let _ = self.store.set(store);
    }

    /// The attached warm store, if any.
    pub fn snapshot_store(&self) -> Option<&Arc<SnapshotStore>> {
        self.store.get()
    }

    /// Saves the warm store to disk (no-op without one), counting the
    /// persisted entries under `cache.persisted`.
    pub fn persist_cache(&self) -> std::io::Result<u64> {
        let Some(store) = self.store.get() else {
            return Ok(0);
        };
        let persisted = store.save()?;
        self.telemetry().add(Counter::CachePersisted, persisted);
        Ok(persisted)
    }

    /// Installs a sink that receives a memo dump after every optimization
    /// (instead of the `RULETEST_DUMP_MEMO`-gated stderr fallback). Pass
    /// `None` to uninstall.
    pub fn set_memo_sink(&self, sink: Option<Box<dyn Write + Send>>) {
        *self.memo_sink.lock().expect("memo sink poisoned") = sink;
    }

    /// Installs a debug-mode substitute auditor, invoked on every
    /// exploration substitute before memo insertion. Takes `&self` so it
    /// works through an `Arc<Optimizer>`; pass `None` to uninstall.
    pub fn set_substitute_auditor(&self, auditor: Option<Arc<dyn SubstituteAuditor>>) {
        *self.auditor.lock().expect("auditor poisoned") = auditor;
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Total number of rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.0 as usize]
    }

    pub fn rule_id(&self, name: &str) -> Option<RuleId> {
        self.by_name.get(name).copied()
    }

    /// **The pattern-export API of §3.1**: the rule pattern tree for a rule.
    /// Serialize with [`PatternTree::to_xml`] for the paper's XML format.
    pub fn rule_pattern(&self, id: RuleId) -> &PatternTree {
        &self.rule(id).pattern
    }

    /// Ids of all exploration (logical) rules, in stable order.
    pub fn exploration_rule_ids(&self) -> Vec<RuleId> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kind == RuleKind::Exploration)
            .map(|(i, _)| RuleId(i as u16))
            .collect()
    }

    /// Ids of all implementation (physical) rules.
    pub fn implementation_rule_ids(&self) -> Vec<RuleId> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kind == RuleKind::Implementation)
            .map(|(i, _)| RuleId(i as u16))
            .collect()
    }

    /// Number of `optimize*` calls made so far (the "optimizer invocations"
    /// counted by §5.3.1 / Figure 14).
    pub fn invocation_count(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Optimizes with every rule enabled — `Plan(q)`.
    pub fn optimize(&self, tree: &LogicalTree) -> Result<OptimizeResult> {
        self.optimize_with(tree, &OptimizerConfig::default())
    }

    /// Cached variant of [`Optimizer::optimize`]: identical result, but a
    /// repeat of a previously optimized `(tree, mask, budgets)` key is
    /// served from the invocation cache without spending an invocation.
    pub fn optimize_cached(&self, tree: &LogicalTree) -> Result<Arc<OptimizeResult>> {
        self.optimize_with_cached(tree, &OptimizerConfig::default())
    }

    /// Cached variant of [`Optimizer::optimize_with`]. Errors are not
    /// cached (they are rare and cheap to rediscover).
    pub fn optimize_with_cached(
        &self,
        tree: &LogicalTree,
        config: &OptimizerConfig,
    ) -> Result<Arc<OptimizeResult>> {
        let key = CacheKey::new(tree, config);
        let tel = self.telemetry();
        if let Some(hit) = self.cache.lookup(&key) {
            tel.event(|| Event::CacheLookup {
                fingerprint: tree_fingerprint(tree),
                hit: true,
            });
            return Ok(hit);
        }
        tel.event(|| Event::CacheLookup {
            fingerprint: tree_fingerprint(tree),
            hit: false,
        });
        // Disk warm path: a persisted entry stands in for the compute —
        // including its profile sample, so warm telemetry replays the
        // cold run's exactly. Entries absorbed from a checkpoint report
        // (`counted_in_base`) are already in the base aggregates and must
        // not re-record.
        if let Some(store) = self.store.get() {
            if let Some(warm) = store.peek_warm(&key) {
                tel.incr(Counter::CacheWarmHits);
                if self.cache.insert(key, Arc::clone(&warm.result)) && !warm.counted_in_base {
                    self.record_result(&warm.result, warm.sample);
                }
                return Ok(warm.result);
            }
        }
        let (result, sample) = self.compute(tree, config)?;
        let result = Arc::new(result);
        if let Some(store) = self.store.get() {
            store.record_fresh(&key, &result, sample.as_ref());
        }
        // Racing workers may compute the same key concurrently; only the
        // insertion winner records the result (and flushes the profile
        // sample), so telemetry aggregates count each unique optimization
        // exactly once regardless of thread count or scheduling.
        if self.cache.insert(key, Arc::clone(&result)) {
            self.record_result(&result, sample);
        }
        Ok(result)
    }

    /// Hit/miss/eviction counters of the invocation cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached optimization result (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    /// Optimizes under a configuration — `Plan(q, ¬R)` when rules are
    /// disabled in `config.mask`.
    pub fn optimize_with(
        &self,
        tree: &LogicalTree,
        config: &OptimizerConfig,
    ) -> Result<OptimizeResult> {
        let (result, sample) = self.compute(tree, config)?;
        self.record_result(&result, sample);
        Ok(result)
    }

    /// Records a finished unique optimization into the telemetry registry
    /// and books its profile sample under the caller's span stack.
    /// Called once per *unique* `(tree, mask, budgets)` key on the cached
    /// path (insertion winner) and once per direct [`Self::optimize_with`]
    /// call, which keeps every aggregate thread-count-invariant.
    fn record_result(&self, result: &OptimizeResult, sample: Option<ProfileSample>) {
        let tel = self.telemetry();
        if !tel.is_enabled() {
            return;
        }
        if let Some(sample) = &sample {
            tel.flush_profile(sample);
        }
        tel.incr(Counter::OptInvocations);
        if result.truncated {
            tel.incr(Counter::OptTruncated);
        }
        tel.observe(Hist::MemoGroups, result.groups as u64);
        tel.observe(Hist::MemoExprs, result.exprs as u64);
        let explore = result
            .rule_set
            .iter()
            .filter(|&&r| self.rule(r).kind == RuleKind::Exploration)
            .count() as u64;
        tel.add(Counter::RuleFiresExplore, explore);
        tel.add(
            Counter::RuleFiresImplement,
            result.rule_set.len() as u64 - explore,
        );
        tel.record_rule_set(result.rule_set.iter().map(|r| r.0));
    }

    /// The actual optimization (uninstrumented entry point — callers are
    /// responsible for [`Self::record_result`] so cached and uncached paths
    /// agree on what counts as one invocation). Returns the profile sample
    /// alongside the result so the caller can flush it only for
    /// deduplicated winners.
    fn compute(
        &self,
        tree: &LogicalTree,
        config: &OptimizerConfig,
    ) -> Result<(OptimizeResult, Option<ProfileSample>)> {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        let tel = self.telemetry();
        // Timestamp only when enabled: `Instant::now` is a syscall on some
        // platforms and the disabled path must stay near-free.
        let started = tel.is_enabled().then(Instant::now);
        // Per-rule bind/substitute timing, buffered until the dedup
        // decision (`Some` exactly when `started` is).
        let mut sample = tel.profile_sample();
        // Fingerprint the *unpinned* tree so invocation events correlate
        // with the cache-lookup events for the same query.
        let fingerprint = tel.tracing().then(|| tree_fingerprint(tree));

        // Pin the root output order with an identity projection so that
        // every alternative plan emits columns in the same order (join
        // commutativity legitimately permutes column order inside).
        let pinned;
        let tree = if matches!(tree.op, Operator::Project { .. }) {
            tree
        } else {
            let schema = derive_schema(&self.db.catalog, tree)?;
            let outputs = schema
                .iter()
                .map(|c| (c.id, Expr::col(c.id)))
                .collect::<Vec<_>>();
            pinned = LogicalTree::project(tree.clone(), outputs);
            &pinned
        };

        let mut memo = Memo::new();
        let (root, _) = memo.insert(&self.db, &newtree_from_logical(tree), None, true)?;
        let ids = RefCell::new(IdGen::above(tree));
        let auditor = self.auditor.lock().expect("auditor poisoned").clone();
        let mut exercised: BTreeSet<RuleId> = BTreeSet::new();
        let mut rule_dependencies: BTreeSet<(RuleId, RuleId)> = BTreeSet::new();
        let mut truncated = false;

        // ---- Exploration to fixpoint ----
        // `applied` dedupes (expression, rule, concrete binding). Rules
        // that mint fresh column ids fire only on *organic* expressions
        // (those not derived from any fresh-id rule): their outputs can
        // never deduplicate, so firing them on their own descendants would
        // diverge (e.g. endlessly re-splitting the global aggregate of a
        // previous split). Organic-ness is intrinsic to an expression's
        // derivation, hence independent of the rule mask — which preserves
        // cost monotonicity under masking.
        let mut applied: HashSet<AppliedKey> = HashSet::new();
        // (group, expr, rule) -> sum of child group sizes when last matched;
        // re-matching is pointless until some child group grows.
        let mut match_watermark: HashMap<(u32, u32, u16), usize> = HashMap::new();
        let empty: Vec<usize> = Vec::new();

        'passes: for _pass in 0..config.max_passes {
            config.deadline.check("memo exploration pass")?;
            let mut changed = false;
            let mut g = 0usize;
            while g < memo.num_groups() {
                let gid = GroupId(g as u32);
                // Task-expansion boundary: a runaway rule is abandoned
                // within one group's worth of work.
                config.deadline.check("memo task expansion")?;
                let mut ei = 0usize;
                while ei < memo.group(gid).exprs.len() {
                    let kind = memo.group(gid).exprs[ei].op.kind();
                    let candidates = self.explore_by_kind.get(&kind).unwrap_or(&empty);
                    for &ri in candidates {
                        let rule = &self.rules[ri];
                        let rid = RuleId(ri as u16);
                        if config.mask.is_disabled(rid) {
                            continue;
                        }
                        if rule.mints_fresh_ids && !memo.is_organic(gid, ei) {
                            continue;
                        }
                        // Child-growth watermark: bindings only change when
                        // a child group gains expressions.
                        let child_sum: usize = memo.group(gid).exprs[ei]
                            .children
                            .iter()
                            .map(|&c| memo.group(c).exprs.len())
                            .sum();
                        let wm_key = (gid.0, ei as u32, rid.0);
                        if match_watermark.get(&wm_key) == Some(&child_sum) {
                            continue;
                        }
                        match_watermark.insert(wm_key, child_sum);
                        let bind_started = sample.is_some().then(Instant::now);
                        let bindings = match_bindings(&memo, &rule.pattern, gid, ei);
                        if let (Some(s), Some(t)) = (sample.as_mut(), bind_started) {
                            s.record_bind(rid.0, RulePhase::Explore, t.elapsed().as_nanos() as u64);
                        }
                        for (bound, sig) in bindings {
                            if rule.mints_fresh_ids
                                && !sig.iter().all(|&(g, e)| memo.is_organic(GroupId(g), e))
                            {
                                continue;
                            }
                            let key = (gid.0, ei, rid.0, sig);
                            if !applied.insert(key) {
                                continue;
                            }
                            let apply_started = sample.is_some().then(Instant::now);
                            let results = {
                                let ctx = RuleCtx {
                                    db: &self.db,
                                    memo: &memo,
                                    ids: &ids,
                                };
                                rule.action
                                    .apply_explore(&ctx, &bound)
                                    .expect("exploration task on implementation rule")
                            };
                            if let (Some(s), Some(t)) = (sample.as_mut(), apply_started) {
                                s.record_apply(
                                    rid.0,
                                    RulePhase::Explore,
                                    t.elapsed().as_nanos() as u64,
                                    !results.is_empty(),
                                );
                            }
                            if !results.is_empty() {
                                exercised.insert(rid);
                                if let Some(creator) = memo.created_by(gid, ei) {
                                    rule_dependencies.insert((creator, rid));
                                }
                                let produced = results.len() as u32;
                                tel.event(|| Event::RuleFire {
                                    rule: rid.0,
                                    phase: RulePhase::Explore,
                                    produced,
                                });
                            }
                            if let Some(aud) = &auditor {
                                for nt in &results {
                                    let violations =
                                        aud.audit(&self.db, &memo, &bound, rule.name, nt);
                                    if violations > 0 {
                                        tel.add(Counter::LintViolations, violations as u64);
                                        tel.event(|| Event::LintViolation { rule: rid.0 });
                                    }
                                }
                            }
                            let organic = !rule.mints_fresh_ids && memo.is_organic(gid, ei);
                            for nt in results {
                                ruletest_common::chaos::point("memo.insert")?;
                                let (_, fresh) = memo.insert_created_by(
                                    &self.db,
                                    &nt,
                                    Some(gid),
                                    organic,
                                    Some(rid),
                                )?;
                                changed |= fresh;
                            }
                            if let Some(hard) = config.hard_max_exprs {
                                if memo.num_exprs() > hard {
                                    return Err(Error::budget(format!(
                                        "memo grew past the hard cap of {hard} expressions"
                                    )));
                                }
                            }
                            if memo.num_exprs() > config.max_exprs {
                                truncated = true;
                                break 'passes;
                            }
                        }
                    }
                    ei += 1;
                }
                g += 1;
            }
            if !changed {
                break;
            }
            if _pass + 1 == config.max_passes {
                truncated = true;
            }
        }

        self.maybe_dump_memo(&memo);

        // ---- Implementation & extraction ----
        let mut extractor = Extractor {
            optimizer: self,
            memo: &memo,
            config,
            ids: &ids,
            cache: HashMap::new(),
            exercised: &mut exercised,
            sample: &mut sample,
        };
        let best = extractor.best_plan(root)?;
        let Some((plan, cost)) = best else {
            return Err(Error::invalid(
                "no physical plan exists under the given rule mask",
            ));
        };

        if let Some(started) = started {
            let elapsed = started.elapsed();
            let elapsed_us = elapsed.as_micros() as u64;
            tel.observe(Hist::InvocationMicros, elapsed_us);
            if let Some(s) = sample.as_mut() {
                s.elapsed_ns = elapsed.as_nanos() as u64;
            }
            let (groups, exprs) = (memo.num_groups() as u32, memo.num_exprs() as u32);
            let masked_rules = config.mask.disabled_rules().len() as u32;
            tel.event(|| Event::Invocation {
                fingerprint: fingerprint.unwrap_or(0),
                masked_rules,
                groups,
                exprs,
                truncated,
                elapsed_us,
            });
        }

        Ok((
            OptimizeResult {
                cost,
                plan,
                rule_set: exercised,
                rule_dependencies,
                groups: memo.num_groups(),
                exprs: memo.num_exprs(),
                truncated,
            },
            sample,
        ))
    }

    /// Writes a memo dump to the injected sink (see
    /// [`Optimizer::set_memo_sink`]); without a sink, dumps to stderr only
    /// when the `RULETEST_DUMP_MEMO` environment variable is set.
    fn maybe_dump_memo(&self, memo: &Memo) {
        let mut sink = self.memo_sink.lock().expect("memo sink poisoned");
        match sink.as_mut() {
            Some(w) => {
                let _ = write_memo_dump(memo, w.as_mut());
            }
            None => {
                if std::env::var_os("RULETEST_DUMP_MEMO").is_some() {
                    let _ = write_memo_dump(memo, &mut std::io::stderr().lock());
                }
            }
        }
    }
}

/// Renders every memo group and expression (organic expressions unstarred,
/// derived ones starred) to `out`.
fn write_memo_dump(memo: &Memo, out: &mut dyn Write) -> std::io::Result<()> {
    for g in 0..memo.num_groups() {
        let gid = GroupId(g as u32);
        let group = memo.group(gid);
        writeln!(out, "group g{g} (rows={:.1}):", group.est_rows)?;
        for (i, e) in group.exprs.iter().enumerate() {
            let kids: Vec<String> = e.children.iter().map(|c| c.to_string()).collect();
            writeln!(
                out,
                "  [{i}]{} {} ({})",
                if group.organic[i] { "" } else { "*" },
                e.op.label(),
                kids.join(", ")
            )?;
        }
    }
    Ok(())
}

/// Signature of one concrete binding: the (group, expression) pairs
/// chosen for nested pattern nodes, used to deduplicate applications.
pub type BindingSig = Vec<(u32, usize)>;

/// One rule application, for the explore loop's dedup set: expression
/// coordinates, rule id, and the concrete binding signature.
type AppliedKey = (u32, usize, u16, BindingSig);

/// Enumerates pattern bindings of `pattern` against expression `ei` of
/// group `gid`. Returns each binding plus a signature identifying the
/// nested expressions chosen (for deduplication). Public so the lint
/// crate's corpus auditor can bind rules exactly as the explore loop does.
pub fn match_bindings(
    memo: &Memo,
    pattern: &PatternTree,
    gid: GroupId,
    ei: usize,
) -> Vec<(Bound, BindingSig)> {
    let expr = &memo.group(gid).exprs[ei];
    let PatternTree::Op { matcher, children } = pattern else {
        // A bare placeholder pattern matches trivially but binds nothing a
        // rule could use; no rule has one.
        return vec![];
    };
    if !matcher_accepts(matcher, &expr.op) {
        return vec![];
    }
    if children.len() != expr.children.len() {
        return vec![];
    }
    // For each child slot, the list of possible (BoundChild, signature)
    // alternatives.
    let mut slot_options: Vec<Vec<(BoundChild, BindingSig)>> = Vec::new();
    for (pat_child, &cg) in children.iter().zip(&expr.children) {
        match pat_child {
            PatternTree::Any => {
                slot_options.push(vec![(BoundChild::Leaf(cg), vec![])]);
            }
            PatternTree::Op { .. } => {
                let mut opts = Vec::new();
                for (cei, _) in memo.group(cg).exprs.iter().enumerate() {
                    for (nested, mut sig) in match_bindings(memo, pat_child, cg, cei) {
                        sig.insert(0, (cg.0, cei));
                        opts.push((BoundChild::Nested(nested), sig));
                    }
                }
                if opts.is_empty() {
                    return vec![];
                }
                slot_options.push(opts);
            }
        }
    }
    // Cartesian product over slots.
    let mut out: Vec<(Vec<BoundChild>, BindingSig)> = vec![(vec![], vec![])];
    for opts in slot_options {
        let mut next = Vec::with_capacity(out.len() * opts.len());
        for (partial, psig) in &out {
            for (child, csig) in &opts {
                let mut p = partial.clone();
                p.push(child.clone());
                let mut s = psig.clone();
                s.extend(csig.iter().copied());
                next.push((p, s));
            }
        }
        out = next;
    }
    out.into_iter()
        .map(|(children, sig)| {
            (
                Bound {
                    group: gid,
                    op: expr.op.clone(),
                    children,
                },
                sig,
            )
        })
        .collect()
}

fn matcher_accepts(matcher: &OpMatcher, op: &Operator) -> bool {
    matcher.accepts(op.kind(), op.join_kind())
}

/// Maps a physical operator to the logical operator whose schema derivation
/// it shares.
fn logical_equivalent(op: &PhysOp) -> Operator {
    match op {
        PhysOp::SeqScan { table, cols } => Operator::Get {
            table: *table,
            cols: cols.clone(),
        },
        PhysOp::IndexSeek { table, cols, .. } => Operator::Get {
            table: *table,
            cols: cols.clone(),
        },
        PhysOp::Filter { predicate } => Operator::Select {
            predicate: predicate.clone(),
        },
        PhysOp::Compute { outputs } => Operator::Project {
            outputs: outputs.clone(),
        },
        PhysOp::NLJoin { kind, predicate } => Operator::Join {
            kind: *kind,
            predicate: predicate.clone(),
        },
        PhysOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            let mut pred = residual.clone();
            for (l, r) in left_keys.iter().zip(right_keys) {
                pred = Expr::and(pred, Expr::eq(Expr::col(*l), Expr::col(*r)));
            }
            Operator::Join {
                kind: *kind,
                predicate: pred,
            }
        }
        PhysOp::MergeJoin {
            left_key,
            right_key,
            residual,
        } => Operator::Join {
            kind: JoinKind::Inner,
            predicate: Expr::and(
                residual.clone(),
                Expr::eq(Expr::col(*left_key), Expr::col(*right_key)),
            ),
        },
        PhysOp::HashAgg { group_by, aggs } | PhysOp::StreamAgg { group_by, aggs } => {
            Operator::GbAgg {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            }
        }
        PhysOp::Concat {
            outputs,
            left_cols,
            right_cols,
        } => Operator::UnionAll {
            outputs: outputs.clone(),
            left_cols: left_cols.clone(),
            right_cols: right_cols.clone(),
        },
        PhysOp::HashDistinct => Operator::Distinct,
        PhysOp::SortOp { keys } => Operator::Sort { keys: keys.clone() },
        PhysOp::TopN { n, keys } => Operator::Top {
            n: *n,
            keys: keys.clone(),
        },
    }
}

/// Output schema of a physical operator given its child *plan* schemas
/// (positional, so a commuted join's plan schema reflects the commuted
/// order).
pub fn phys_schema(db: &Database, op: &PhysOp, children: &[&Schema]) -> Result<Schema> {
    let logical = logical_equivalent(op);
    // IndexSeek absorbed a Select(Get); its schema is the Get's.
    output_schema(&db.catalog, &logical, children)
}

enum CacheEntry {
    InProgress,
    Done(Option<(PhysicalPlan, f64)>),
}

struct Extractor<'a> {
    optimizer: &'a Optimizer,
    memo: &'a Memo,
    config: &'a OptimizerConfig,
    ids: &'a RefCell<IdGen>,
    cache: HashMap<GroupId, CacheEntry>,
    exercised: &'a mut BTreeSet<RuleId>,
    /// The invocation's profile buffer (implementation-phase bind/apply
    /// timings land here, `None` when telemetry is disabled).
    sample: &'a mut Option<ProfileSample>,
}

impl Extractor<'_> {
    /// Bottom-up dynamic program: the cheapest physical plan for a group.
    fn best_plan(&mut self, g: GroupId) -> Result<Option<(PhysicalPlan, f64)>> {
        match self.cache.get(&g) {
            Some(CacheEntry::Done(r)) => return Ok(r.clone()),
            Some(CacheEntry::InProgress) => return Ok(None), // cycle guard
            None => {}
        }
        self.cache.insert(g, CacheEntry::InProgress);

        let db = &self.optimizer.db;
        let mut best: Option<(PhysicalPlan, f64)> = None;
        let empty: Vec<usize> = Vec::new();
        for ei in 0..self.memo.group(g).exprs.len() {
            let kind = self.memo.group(g).exprs[ei].op.kind();
            let candidates = self
                .optimizer
                .implement_by_kind
                .get(&kind)
                .unwrap_or(&empty);
            for &ri in candidates.iter() {
                let rule = &self.optimizer.rules[ri];
                let rid = RuleId(ri as u16);
                if self.config.mask.is_disabled(rid) {
                    continue;
                }
                let bind_started = self.sample.is_some().then(Instant::now);
                let bindings = match_bindings(self.memo, &rule.pattern, g, ei);
                if let (Some(s), Some(t)) = (self.sample.as_mut(), bind_started) {
                    s.record_bind(rid.0, RulePhase::Implement, t.elapsed().as_nanos() as u64);
                }
                for (bound, _) in bindings {
                    let apply_started = self.sample.is_some().then(Instant::now);
                    let candidates = {
                        let ctx = RuleCtx {
                            db,
                            memo: self.memo,
                            ids: self.ids,
                        };
                        match &rule.action {
                            RuleAction::Implement(f) => f(&ctx, &bound),
                            _ => unreachable!(),
                        }
                    };
                    if let (Some(s), Some(t)) = (self.sample.as_mut(), apply_started) {
                        s.record_apply(
                            rid.0,
                            RulePhase::Implement,
                            t.elapsed().as_nanos() as u64,
                            !candidates.is_empty(),
                        );
                    }
                    if !candidates.is_empty() {
                        self.exercised.insert(rid);
                        let produced = candidates.len() as u32;
                        self.optimizer.telemetry().event(|| Event::RuleFire {
                            rule: rid.0,
                            phase: RulePhase::Implement,
                            produced,
                        });
                    }
                    'cand: for cand in candidates {
                        let mut child_plans = Vec::with_capacity(cand.children.len());
                        for &cg in &cand.children {
                            match self.best_plan(cg)? {
                                Some((p, _)) => child_plans.push(p),
                                None => continue 'cand,
                            }
                        }
                        let child_schemas: Vec<&Schema> =
                            child_plans.iter().map(|p| &p.schema).collect();
                        let schema = phys_schema(db, &cand.op, &child_schemas)?;
                        let child_rows: Vec<f64> = child_plans.iter().map(|p| p.est_rows).collect();
                        let child_costs: Vec<f64> =
                            child_plans.iter().map(|p| p.est_cost).collect();
                        // Cardinality is a *group* (logical) property: every
                        // plan implementing this group carries the same row
                        // estimate. Per-plan estimates would let a locally
                        // cheaper alternative claim a different output size
                        // and make parent costs — and therefore the chosen
                        // plan — depend on which alternatives the rule mask
                        // happened to generate.
                        let rows = self.memo.est_rows(g);
                        let cost = phys_cost(&cand.op, &child_rows, &child_costs, rows);
                        if best.as_ref().is_none_or(|(_, bc)| cost < *bc) {
                            best = Some((
                                PhysicalPlan {
                                    op: cand.op,
                                    children: child_plans,
                                    schema,
                                    est_rows: rows,
                                    est_cost: cost,
                                },
                                cost,
                            ));
                        }
                    }
                }
            }
        }
        self.cache.insert(g, CacheEntry::Done(best.clone()));
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_storage::{tpch_database, TpchConfig};

    fn optimizer() -> Optimizer {
        Optimizer::new(Arc::new(tpch_database(&TpchConfig::default()).unwrap()))
    }

    fn simple_join(opt: &Optimizer) -> LogicalTree {
        let cat = &opt.db.catalog;
        let mut ids = IdGen::new();
        let l = LogicalTree::get(cat.table_by_name("nation").unwrap(), &mut ids);
        let r = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        let pred = Expr::eq(Expr::col(l.output_col(2)), Expr::col(r.output_col(0)));
        LogicalTree::join(JoinKind::Inner, l, r, pred)
    }

    #[test]
    fn optimize_produces_a_plan_and_ruleset() {
        let opt = optimizer();
        let tree = simple_join(&opt);
        let res = opt.optimize(&tree).unwrap();
        assert!(res.cost > 0.0);
        assert!(!res.truncated);
        assert!(!res.rule_set.is_empty());
        let commute = opt.rule_id("InnerJoinCommute").unwrap();
        assert!(res.rule_set.contains(&commute));
        // Implementation rules are traced too.
        let seqscan = opt.rule_id("GetToSeqScan").unwrap();
        assert!(res.rule_set.contains(&seqscan));
    }

    #[test]
    fn expired_deadline_abandons_the_search_with_a_timeout() {
        let opt = optimizer();
        let tree = simple_join(&opt);
        // A 1ms deadline that has certainly passed by the time the memo
        // loop reaches its first cooperative check.
        let deadline = ruletest_common::Deadline::after_ms(1);
        while !deadline.expired() {
            std::hint::spin_loop();
        }
        let err = opt
            .optimize_with(
                &tree,
                &OptimizerConfig {
                    deadline,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::Timeout(_)), "{err}");
        // The same tree still optimizes fine without a deadline — the
        // abandoned invocation left no poisoned state behind.
        assert!(opt.optimize(&tree).is_ok());
    }

    #[test]
    fn hard_memo_cap_fails_with_a_budget_error() {
        let opt = optimizer();
        let tree = simple_join(&opt);
        let err = opt
            .optimize_with(
                &tree,
                &OptimizerConfig {
                    hard_max_exprs: Some(1),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::Budget(_)), "{err}");
    }

    #[test]
    fn masking_a_rule_removes_it_from_the_ruleset() {
        let opt = optimizer();
        let tree = simple_join(&opt);
        let commute = opt.rule_id("InnerJoinCommute").unwrap();
        let res = opt
            .optimize_with(&tree, &OptimizerConfig::disabling(&[commute]))
            .unwrap();
        assert!(!res.rule_set.contains(&commute));
    }

    #[test]
    fn disabling_rules_never_lowers_cost() {
        let opt = optimizer();
        let tree = simple_join(&opt);
        let base = opt.optimize(&tree).unwrap();
        for rid in opt.exploration_rule_ids() {
            let masked = opt
                .optimize_with(&tree, &OptimizerConfig::disabling(&[rid]))
                .unwrap();
            assert!(
                masked.cost >= base.cost - 1e-9,
                "disabling {} lowered cost: {} -> {}",
                opt.rule(rid).name,
                base.cost,
                masked.cost
            );
        }
    }

    #[test]
    fn hash_join_beats_nested_loops_here() {
        let opt = optimizer();
        let tree = simple_join(&opt);
        let base = opt.optimize(&tree).unwrap();
        let hj = opt.rule_id("JoinToHashJoin").unwrap();
        let mj = opt.rule_id("InnerJoinToMergeJoin").unwrap();
        let masked = opt
            .optimize_with(&tree, &OptimizerConfig::disabling(&[hj, mj]))
            .unwrap();
        assert!(masked.cost > base.cost);
    }

    #[test]
    fn disabling_every_join_implementation_fails() {
        let opt = optimizer();
        let tree = simple_join(&opt);
        let ids: Vec<RuleId> = [
            "JoinToNestedLoops",
            "JoinToHashJoin",
            "InnerJoinToMergeJoin",
        ]
        .iter()
        .map(|n| opt.rule_id(n).unwrap())
        .collect();
        assert!(opt
            .optimize_with(&tree, &OptimizerConfig::disabling(&ids))
            .is_err());
    }

    #[test]
    fn invocation_counter_increments() {
        let opt = optimizer();
        let tree = simple_join(&opt);
        let before = opt.invocation_count();
        let _ = opt.optimize(&tree).unwrap();
        let _ = opt.optimize(&tree).unwrap();
        assert_eq!(opt.invocation_count(), before + 2);
    }

    #[test]
    fn telemetry_counts_unique_optimizations_once() {
        let opt = optimizer();
        opt.attach_telemetry(Telemetry::enabled());
        let tree = simple_join(&opt);
        let a = opt.optimize_cached(&tree).unwrap();
        let _b = opt.optimize_cached(&tree).unwrap(); // cache hit
        let tel = opt.telemetry();
        assert_eq!(tel.counter(Counter::OptInvocations), 1);
        let snap = tel.metrics_snapshot();
        // Every rule in the result's rule set got exactly one firing.
        for rid in &a.rule_set {
            assert_eq!(snap.rule_firings[rid.0 as usize], 1, "rule {rid:?}");
        }
        // Both lookups and the computed invocation were traced.
        let events = tel.trace_stats();
        assert!(events.recorded >= 3, "lookups + rule fires + invocation");
    }

    #[test]
    fn profile_samples_flush_once_per_unique_key() {
        let opt = optimizer();
        opt.attach_telemetry(Telemetry::metrics_only());
        let tree = simple_join(&opt);
        let res = opt.optimize_cached(&tree).unwrap();
        let _ = opt.optimize_cached(&tree).unwrap(); // cache hit: no reflush
        let names: Vec<String> = (0..opt.num_rules())
            .map(|i| opt.rule(RuleId(i as u16)).name.to_string())
            .collect();
        let profile = opt.telemetry().profile_section(&names);
        profile.validate().unwrap();
        // No enclosing stage span here, so the invocation is a root row.
        let root = profile
            .spans
            .iter()
            .find(|r| r.path == "optimize")
            .expect("optimize row");
        assert_eq!(root.count, 1);
        // Per-rule attribution covers both phases.
        assert!(profile.rules.contains_key("InnerJoinCommute/explore"));
        assert!(profile.rules.contains_key("GetToSeqScan/implement"));
        let scan = &profile.rules["GetToSeqScan/implement"];
        assert!(scan.binds >= 1 && scan.fires >= 1);
        // Every rule in the result's rule set shows up in the cost table.
        for rid in &res.rule_set {
            let name = opt.rule(*rid).name;
            assert!(
                profile.rules.keys().any(|k| k.starts_with(name)),
                "missing cost row for {name}"
            );
        }
    }

    #[test]
    fn uncached_calls_record_each_time() {
        let opt = optimizer();
        opt.attach_telemetry(Telemetry::metrics_only());
        let tree = simple_join(&opt);
        let _ = opt.optimize(&tree).unwrap();
        let _ = opt.optimize(&tree).unwrap();
        assert_eq!(opt.telemetry().counter(Counter::OptInvocations), 2);
    }

    #[test]
    fn memo_sink_receives_the_dump() {
        use std::sync::{Arc as SArc, Mutex as SMutex};

        #[derive(Clone)]
        struct Buf(SArc<SMutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let opt = optimizer();
        let buf = Buf(SArc::new(SMutex::new(Vec::new())));
        opt.set_memo_sink(Some(Box::new(buf.clone())));
        let tree = simple_join(&opt);
        let _ = opt.optimize(&tree).unwrap();
        let dump = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(dump.contains("group g0"), "dump: {dump:?}");
        assert!(dump.contains("JOIN"), "dump: {dump:?}");

        // Uninstalling stops the dumps.
        opt.set_memo_sink(None);
        buf.0.lock().unwrap().clear();
        let _ = opt.optimize(&tree).unwrap();
        assert!(buf.0.lock().unwrap().is_empty());
    }

    #[test]
    fn warm_store_replays_cold_telemetry_without_computing() {
        use crate::persist::{campaign_fingerprint, SnapshotStore};
        let dir = std::env::temp_dir().join(format!(
            "ruletest-opt-warm-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let cold = optimizer();
        cold.attach_telemetry(Telemetry::metrics_only());
        let fp = campaign_fingerprint(&cold.db.catalog, cold.rules.iter(), 1, 1);
        cold.attach_snapshot_store(Arc::new(SnapshotStore::open(&dir, fp, None).unwrap()));
        let tree = simple_join(&cold);
        let cold_res = cold.optimize_cached(&tree).unwrap();
        assert!(cold.persist_cache().unwrap() >= 1);
        assert!(cold.telemetry().counter(Counter::CachePersisted) >= 1);

        let warm = optimizer();
        warm.attach_telemetry(Telemetry::metrics_only());
        warm.attach_snapshot_store(Arc::new(SnapshotStore::open(&dir, fp, None).unwrap()));
        let warm_res = warm.optimize_cached(&tree).unwrap();
        assert_eq!(warm.invocation_count(), 0, "warm hit must not compute");
        assert_eq!(warm_res.cost.to_bits(), cold_res.cost.to_bits());
        assert_eq!(warm_res.rule_set, cold_res.rule_set);
        assert_eq!(warm.telemetry().counter(Counter::OptInvocations), 1);
        assert_eq!(warm.telemetry().counter(Counter::CacheWarmHits), 1);
        // The persisted profile sample replays verbatim: warm and cold
        // profile sections are byte-identical.
        let names: Vec<String> = (0..cold.num_rules())
            .map(|i| cold.rule(RuleId(i as u16)).name.to_string())
            .collect();
        assert_eq!(
            cold.telemetry()
                .profile_section(&names)
                .to_json()
                .to_string_compact(),
            warm.telemetry()
                .profile_section(&names)
                .to_json()
                .to_string_compact()
        );

        // A stale fingerprint is rejected and counted; the probe computes.
        let stale = optimizer();
        stale.attach_telemetry(Telemetry::metrics_only());
        stale.attach_snapshot_store(Arc::new(SnapshotStore::open(&dir, fp + 1, None).unwrap()));
        assert_eq!(
            stale.telemetry().counter(Counter::CacheFingerprintRejected),
            1
        );
        let _ = stale.optimize_cached(&tree).unwrap();
        assert_eq!(stale.invocation_count(), 1, "rejected snapshot stays cold");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pattern_api_exports_xml() {
        let opt = optimizer();
        let commute = opt.rule_id("InnerJoinCommute").unwrap();
        let xml = opt.rule_pattern(commute).to_xml();
        assert!(xml.contains("Join"));
        assert!(xml.contains("<Any/>"));
    }

    #[test]
    fn rule_catalog_is_well_formed() {
        let opt = optimizer();
        assert!(opt.exploration_rule_ids().len() >= 30, "paper uses ~30");
        assert!(opt.implementation_rule_ids().len() >= 10);
        // Names unique.
        let mut names: Vec<_> = (0..opt.num_rules())
            .map(|i| opt.rule(RuleId(i as u16)).name)
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), opt.num_rules());
    }
}
