//! The rule abstraction: pattern + substitution (paper §3.1: a rule is the
//! triple *(Rule Name, Rule Pattern, Substitution)*).

use crate::memo::{GroupId, Memo};
use crate::pattern::PatternTree;
use crate::physical::PhysOp;
use ruletest_logical::{LogicalTree, Operator};
use ruletest_storage::Database;
use std::cell::RefCell;

/// Exploration (logical) vs implementation (physical) rules — §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    Exploration,
    Implementation,
}

/// A pattern match handed to a rule's substitution function.
///
/// The matched concrete operators are inlined; every pattern placeholder
/// ("circle") is bound to the memo group it matched.
#[derive(Debug, Clone)]
pub struct Bound {
    /// The group that the *root* of the match lives in; substitutes are
    /// inserted back into this group.
    pub group: GroupId,
    pub op: Operator,
    pub children: Vec<BoundChild>,
}

/// One child position of a bound match.
#[derive(Debug, Clone)]
pub enum BoundChild {
    /// A placeholder: any expression of this group matched.
    Leaf(GroupId),
    /// A nested concrete match.
    Nested(Bound),
}

impl BoundChild {
    /// The memo group this child denotes, regardless of nesting.
    pub fn group(&self) -> GroupId {
        match self {
            BoundChild::Leaf(g) => *g,
            BoundChild::Nested(b) => b.group,
        }
    }

    /// The nested bound match, if the pattern matched a concrete operator
    /// here.
    pub fn nested(&self) -> Option<&Bound> {
        match self {
            BoundChild::Nested(b) => Some(b),
            BoundChild::Leaf(_) => None,
        }
    }
}

/// A substitute produced by an exploration rule: a small tree of new
/// operators whose leaves are existing memo groups.
#[derive(Debug, Clone)]
pub struct NewTree {
    pub op: Operator,
    pub children: Vec<NewChild>,
}

/// Child of a substitute node.
#[derive(Debug, Clone)]
pub enum NewChild {
    /// Reference to an existing group.
    Group(GroupId),
    /// A newly created operator subtree.
    Tree(NewTree),
}

impl NewTree {
    pub fn new(op: Operator, children: Vec<NewChild>) -> Self {
        debug_assert_eq!(op.arity(), children.len());
        Self { op, children }
    }
}

/// A physical alternative produced by an implementation rule.
#[derive(Debug, Clone)]
pub struct PhysCandidate {
    pub op: PhysOp,
    /// Input groups, in execution order (empty for leaves — e.g. an index
    /// seek that absorbed a `Select(Get)` match).
    pub children: Vec<GroupId>,
}

/// Shared context handed to substitution functions.
pub struct RuleCtx<'a> {
    pub db: &'a Database,
    pub memo: &'a Memo,
    /// Fresh-column-id allocator for substitutes that mint columns
    /// (aggregation splits, union pushdowns, ...).
    pub ids: &'a RefCell<ruletest_logical::IdGen>,
}

impl RuleCtx<'_> {
    /// Output schema of a memo group.
    pub fn schema(&self, g: GroupId) -> &ruletest_logical::Schema {
        self.memo.schema(g)
    }
}

/// A boxed exploration substitute, shared by [`RuleAction::ExploreDyn`]
/// and [`Rule::explore_dyn`].
pub type DynExplore = std::sync::Arc<dyn Fn(&RuleCtx, &Bound) -> Vec<NewTree> + Send + Sync>;

/// The substitution function of a rule.
pub enum RuleAction {
    /// Produces zero or more equivalent logical substitutes.
    Explore(fn(&RuleCtx, &Bound) -> Vec<NewTree>),
    /// An exploration substitute carried as a closure. The catalog proper
    /// uses plain fn pointers; this variant exists so derived rules (the
    /// mutation engine's buggy variants) can wrap a real rule's action
    /// with a transformation without a named top-level function per
    /// mutant.
    ExploreDyn(DynExplore),
    /// Produces zero or more physical alternatives.
    Implement(fn(&RuleCtx, &Bound) -> Vec<PhysCandidate>),
}

impl RuleAction {
    /// True for either exploration form.
    pub fn is_explore(&self) -> bool {
        !matches!(self, RuleAction::Implement(_))
    }

    /// Runs the exploration substitute, if this is an exploration action.
    pub fn apply_explore(&self, ctx: &RuleCtx, bound: &Bound) -> Option<Vec<NewTree>> {
        match self {
            RuleAction::Explore(f) => Some(f(ctx, bound)),
            RuleAction::ExploreDyn(f) => Some(f(ctx, bound)),
            RuleAction::Implement(_) => None,
        }
    }
}

/// A transformation rule: name, pattern, substitution (§3.1).
pub struct Rule {
    pub name: &'static str,
    pub kind: RuleKind,
    pub pattern: PatternTree,
    /// Human-readable statement of the sufficient conditions beyond the
    /// pattern (the part the pattern cannot express — §3.1).
    pub precondition: &'static str,
    pub action: RuleAction,
    /// True for rules whose substitutes mint fresh column ids (aggregation
    /// splits, union pushdowns). Such rules fire only on organic
    /// expressions — see `Memo::is_organic` — because their outputs can
    /// never deduplicate and firing them on their own descendants would
    /// diverge.
    pub mints_fresh_ids: bool,
}

impl Rule {
    pub fn explore(
        name: &'static str,
        pattern: PatternTree,
        precondition: &'static str,
        f: fn(&RuleCtx, &Bound) -> Vec<NewTree>,
    ) -> Rule {
        Rule {
            name,
            kind: RuleKind::Exploration,
            pattern,
            precondition,
            action: RuleAction::Explore(f),
            mints_fresh_ids: false,
        }
    }

    /// Like [`Rule::explore`], but the substitute is a closure. Used by
    /// derived (mutated) rule variants; catalog rules stay fn pointers.
    pub fn explore_dyn(
        name: &'static str,
        pattern: PatternTree,
        precondition: &'static str,
        f: DynExplore,
    ) -> Rule {
        Rule {
            name,
            kind: RuleKind::Exploration,
            pattern,
            precondition,
            action: RuleAction::ExploreDyn(f),
            mints_fresh_ids: false,
        }
    }

    pub fn implement(
        name: &'static str,
        pattern: PatternTree,
        precondition: &'static str,
        f: fn(&RuleCtx, &Bound) -> Vec<PhysCandidate>,
    ) -> Rule {
        Rule {
            name,
            kind: RuleKind::Implementation,
            pattern,
            precondition,
            action: RuleAction::Implement(f),
            mints_fresh_ids: false,
        }
    }

    /// Builder: marks this rule as minting fresh column ids.
    pub fn minting_fresh_ids(mut self) -> Rule {
        self.mints_fresh_ids = true;
        self
    }
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish()
    }
}

/// Converts a standalone [`LogicalTree`] into a [`NewTree`] with no group
/// references — used when seeding the memo.
pub fn newtree_from_logical(tree: &LogicalTree) -> NewTree {
    NewTree {
        op: tree.op.clone(),
        children: tree
            .children
            .iter()
            .map(|c| NewChild::Tree(newtree_from_logical(c)))
            .collect(),
    }
}
