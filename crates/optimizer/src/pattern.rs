//! Rule patterns and their export format.
//!
//! A rule pattern (paper §3.1, Figure 3) is the logical-tree shape whose
//! presence is a *necessary* condition for a rule to fire: concrete
//! operators that must be present plus placeholders ("circles") matching
//! any operator. The paper extends the DBMS "with an API through which it
//! returns the rule pattern tree for a rule in a XML format" — reproduced
//! here by [`PatternTree::to_xml`].

use ruletest_logical::{JoinKind, LogicalTree, OpKind};

/// What a concrete pattern node accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpMatcher {
    /// Any operator of this kind (for joins: any join kind).
    Kind(OpKind),
    /// A join whose kind is one of the listed kinds.
    Join(Vec<JoinKind>),
}

impl OpMatcher {
    /// True iff an operator with kind `kind` (and join kind `jk`, when it is
    /// a join) satisfies this matcher.
    pub fn accepts(&self, kind: OpKind, jk: Option<JoinKind>) -> bool {
        match self {
            OpMatcher::Kind(k) => *k == kind,
            OpMatcher::Join(kinds) => {
                kind == OpKind::Join && jk.is_some_and(|j| kinds.contains(&j))
            }
        }
    }

    fn xml_name(&self) -> String {
        match self {
            OpMatcher::Kind(k) => k.to_string(),
            OpMatcher::Join(kinds) => {
                let names: Vec<String> = kinds.iter().map(|k| format!("{k:?}")).collect();
                format!("Join kinds=\"{}\"", names.join("|"))
            }
        }
    }
}

/// A rule pattern tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternTree {
    /// A concrete operator with child patterns (arity must match the
    /// operator kind's arity; leaves of 0-arity ops have no children).
    Op {
        matcher: OpMatcher,
        children: Vec<PatternTree>,
    },
    /// A generic placeholder — the "circle" in Figure 3 — matching any
    /// logical subtree.
    Any,
}

impl PatternTree {
    /// Concrete operator node.
    pub fn op(matcher: OpMatcher, children: Vec<PatternTree>) -> Self {
        PatternTree::Op { matcher, children }
    }

    /// Concrete node by op kind with `Any` children filled in.
    pub fn kind(kind: OpKind, children: Vec<PatternTree>) -> Self {
        PatternTree::Op {
            matcher: OpMatcher::Kind(kind),
            children,
        }
    }

    /// A join node restricted to the given kinds, with the given children.
    pub fn join(kinds: Vec<JoinKind>, left: PatternTree, right: PatternTree) -> Self {
        PatternTree::Op {
            matcher: OpMatcher::Join(kinds),
            children: vec![left, right],
        }
    }

    /// Number of *concrete* operator nodes (placeholders excluded).
    pub fn concrete_ops(&self) -> usize {
        match self {
            PatternTree::Any => 0,
            PatternTree::Op { children, .. } => {
                1 + children
                    .iter()
                    .map(PatternTree::concrete_ops)
                    .sum::<usize>()
            }
        }
    }

    /// Depth of the pattern (Any counts as depth 1).
    pub fn depth(&self) -> usize {
        match self {
            PatternTree::Any => 1,
            PatternTree::Op { children, .. } => {
                1 + children.iter().map(PatternTree::depth).max().unwrap_or(0)
            }
        }
    }

    /// All placeholder positions, as root-to-leaf child-index paths.
    pub fn placeholder_paths(&self) -> Vec<Vec<usize>> {
        fn go(node: &PatternTree, path: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            match node {
                PatternTree::Any => out.push(path.clone()),
                PatternTree::Op { children, .. } => {
                    for (i, c) in children.iter().enumerate() {
                        path.push(i);
                        go(c, path, out);
                        path.pop();
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// True iff this pattern matches the subtree rooted at `tree`:
    /// concrete nodes must align by operator kind (and join kind),
    /// placeholders match any subtree.
    pub fn matches_at(&self, tree: &LogicalTree) -> bool {
        match self {
            PatternTree::Any => true,
            PatternTree::Op { matcher, children } => {
                matcher.accepts(tree.op.kind(), tree.op.join_kind())
                    && children.len() == tree.children.len()
                    && children
                        .iter()
                        .zip(&tree.children)
                        .all(|(p, c)| p.matches_at(c))
            }
        }
    }

    /// True iff the pattern matches anywhere in `tree`. Pattern presence
    /// is the §3.1 *necessary* condition for the rule to fire on the tree
    /// as written — callers can use its absence to skip optimizer work.
    pub fn matches_anywhere(&self, tree: &LogicalTree) -> bool {
        self.matches_at(tree) || tree.children.iter().any(|c| self.matches_anywhere(c))
    }

    /// Serializes the pattern as XML — the export format of the paper's
    /// server API (§3.1).
    pub fn to_xml(&self) -> String {
        fn go(node: &PatternTree, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match node {
                PatternTree::Any => out.push_str(&format!("{pad}<Any/>\n")),
                PatternTree::Op { matcher, children } => {
                    let name = matcher.xml_name();
                    if children.is_empty() {
                        out.push_str(&format!("{pad}<{name}/>\n"));
                    } else {
                        let tag = name.split_whitespace().next().unwrap_or("Op").to_string();
                        out.push_str(&format!("{pad}<{name}>\n"));
                        for c in children {
                            go(c, depth + 1, out);
                        }
                        out.push_str(&format!("{pad}</{tag}>\n"));
                    }
                }
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two example patterns of Figure 3.
    fn join_commute_pattern() -> PatternTree {
        PatternTree::join(vec![JoinKind::Inner], PatternTree::Any, PatternTree::Any)
    }

    fn gbagg_over_join_pattern() -> PatternTree {
        PatternTree::kind(
            OpKind::GbAgg,
            vec![PatternTree::join(
                vec![JoinKind::Inner],
                PatternTree::Any,
                PatternTree::Any,
            )],
        )
    }

    #[test]
    fn matcher_accepts_by_kind() {
        let m = OpMatcher::Kind(OpKind::Select);
        assert!(m.accepts(OpKind::Select, None));
        assert!(!m.accepts(OpKind::Join, Some(JoinKind::Inner)));
    }

    #[test]
    fn join_matcher_filters_kinds() {
        let m = OpMatcher::Join(vec![JoinKind::LeftOuter, JoinKind::RightOuter]);
        assert!(m.accepts(OpKind::Join, Some(JoinKind::LeftOuter)));
        assert!(!m.accepts(OpKind::Join, Some(JoinKind::Inner)));
        assert!(!m.accepts(OpKind::GbAgg, None));
    }

    #[test]
    fn figure3_shapes() {
        let jc = join_commute_pattern();
        assert_eq!(jc.concrete_ops(), 1);
        assert_eq!(jc.depth(), 2);
        let gb = gbagg_over_join_pattern();
        assert_eq!(gb.concrete_ops(), 2);
        assert_eq!(gb.depth(), 3);
    }

    #[test]
    fn placeholder_paths_enumerate_circles() {
        let gb = gbagg_over_join_pattern();
        assert_eq!(gb.placeholder_paths(), vec![vec![0, 0], vec![0, 1]]);
        assert!(PatternTree::kind(OpKind::Get, vec![])
            .placeholder_paths()
            .is_empty());
    }

    #[test]
    fn pattern_matching_against_logical_trees() {
        use ruletest_common::TableId;
        use ruletest_expr::Expr;
        use ruletest_logical::{LogicalTree, Operator};
        let get = |t: u32| {
            LogicalTree::new(
                Operator::Get {
                    table: TableId(t),
                    cols: vec![],
                },
                vec![],
            )
        };
        let join = LogicalTree::new(
            Operator::Join {
                kind: JoinKind::LeftOuter,
                predicate: Expr::true_lit(),
            },
            vec![get(0), get(1)],
        );
        let tree = LogicalTree::new(
            Operator::Select {
                predicate: Expr::true_lit(),
            },
            vec![join],
        );
        let outer = PatternTree::join(
            vec![JoinKind::LeftOuter],
            PatternTree::Any,
            PatternTree::Any,
        );
        assert!(!outer.matches_at(&tree)); // root is a Select
        assert!(outer.matches_anywhere(&tree));
        let inner = PatternTree::join(vec![JoinKind::Inner], PatternTree::Any, PatternTree::Any);
        assert!(!inner.matches_anywhere(&tree));
        // Select-over-outer-join, the shape outer-join rules want.
        let select_over_join = PatternTree::kind(OpKind::Select, vec![outer]);
        assert!(select_over_join.matches_at(&tree));
        assert!(!select_over_join.matches_at(&tree.children[0]));
    }

    #[test]
    fn xml_export_round_shape() {
        let xml = gbagg_over_join_pattern().to_xml();
        assert!(xml.contains("<GbAgg>"));
        assert!(xml.contains("<Join kinds=\"Inner\">"));
        assert!(xml.contains("<Any/>"));
        assert!(xml.contains("</GbAgg>"));
        let leaf = PatternTree::kind(OpKind::Get, vec![]).to_xml();
        assert_eq!(leaf.trim(), "<Get/>");
    }
}
