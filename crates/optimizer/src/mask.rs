//! Rule enable/disable masks.
//!
//! The correctness-testing methodology (§2.3) requires "the ability to
//! optimize (and execute) a query when a given set of transformation rules
//! is turned off" — `Plan(q, ¬R)`. A [`RuleMask`] is that set ¬R, a dense
//! bitset over rule ids.

use ruletest_common::RuleId;

/// A set of *disabled* rules. The default mask disables nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleMask {
    bits: Vec<u64>,
}

impl RuleMask {
    /// All rules enabled.
    pub fn all_enabled() -> Self {
        Self::default()
    }

    /// Disables exactly the given rules.
    pub fn disabling(rules: &[RuleId]) -> Self {
        let mut m = Self::default();
        for &r in rules {
            m.disable(r);
        }
        m
    }

    /// Marks a rule as disabled.
    pub fn disable(&mut self, rule: RuleId) {
        let (word, bit) = (rule.0 as usize / 64, rule.0 as usize % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1 << bit;
    }

    /// Re-enables a rule.
    pub fn enable(&mut self, rule: RuleId) {
        let (word, bit) = (rule.0 as usize / 64, rule.0 as usize % 64);
        if word < self.bits.len() {
            self.bits[word] &= !(1 << bit);
        }
    }

    /// True iff the rule is disabled by this mask.
    pub fn is_disabled(&self, rule: RuleId) -> bool {
        let (word, bit) = (rule.0 as usize / 64, rule.0 as usize % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// The disabled rules, ascending.
    pub fn disabled_rules(&self) -> Vec<RuleId> {
        let mut out = Vec::new();
        for (w, &word) in self.bits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(RuleId((w * 64 + b) as u16));
                bits &= bits - 1;
            }
        }
        out
    }

    /// Number of disabled rules.
    pub fn disabled_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff nothing is disabled.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_disables_nothing() {
        let m = RuleMask::all_enabled();
        assert!(m.is_empty());
        assert!(!m.is_disabled(RuleId(0)));
        assert!(!m.is_disabled(RuleId(200)));
        assert_eq!(m.disabled_count(), 0);
    }

    #[test]
    fn disable_enable_roundtrip() {
        let mut m = RuleMask::all_enabled();
        m.disable(RuleId(3));
        m.disable(RuleId(70));
        assert!(m.is_disabled(RuleId(3)));
        assert!(m.is_disabled(RuleId(70)));
        assert!(!m.is_disabled(RuleId(4)));
        assert_eq!(m.disabled_rules(), vec![RuleId(3), RuleId(70)]);
        assert_eq!(m.disabled_count(), 2);
        m.enable(RuleId(3));
        assert!(!m.is_disabled(RuleId(3)));
        assert_eq!(m.disabled_rules(), vec![RuleId(70)]);
    }

    #[test]
    fn disabling_constructor() {
        let m = RuleMask::disabling(&[RuleId(1), RuleId(1), RuleId(65)]);
        assert_eq!(m.disabled_count(), 2);
        assert!(m.is_disabled(RuleId(65)));
    }

    #[test]
    fn enable_beyond_allocation_is_noop() {
        let mut m = RuleMask::all_enabled();
        m.enable(RuleId(500));
        assert!(m.is_empty());
    }
}
