//! The exploration (logical transformation) rule catalog.
//!
//! Every rule is correct by construction: the substitution preserves the
//! result multiset of the matched expression under SQL semantics (NULLs,
//! bags, three-valued logic). Preconditions that the pattern cannot express
//! are checked inside the substitution functions — this is exactly why a
//! pattern is a *necessary but not sufficient* firing condition (§3.1).

mod agg;
mod join;
mod misc;
mod select;
pub(crate) mod util;

use crate::rule::Rule;

/// All exploration rules, in a stable order (their index is the `RuleId`
/// offset within the exploration segment).
pub fn exploration_rules() -> Vec<Rule> {
    let mut rules = Vec::new();
    rules.extend(join::rules());
    rules.extend(select::rules());
    rules.extend(agg::rules());
    rules.extend(misc::rules());
    rules
}
