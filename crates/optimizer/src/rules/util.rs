//! Shared helpers for rule substitution functions.

use crate::memo::GroupId;
use crate::rule::{BoundChild, NewChild, RuleCtx};
use ruletest_common::ColId;
use ruletest_expr::Expr;
use ruletest_logical::Schema;
use std::collections::BTreeSet;

/// Column-id set of a schema.
pub(crate) fn schema_cols(schema: &Schema) -> BTreeSet<ColId> {
    schema.iter().map(|c| c.id).collect()
}

/// Column-id set of a memo group's output.
pub(crate) fn group_cols(ctx: &RuleCtx, g: GroupId) -> BTreeSet<ColId> {
    schema_cols(ctx.schema(g))
}

/// Shorthand: a substitute child referencing the group a bound child
/// matched.
pub(crate) fn gref(child: &BoundChild) -> NewChild {
    NewChild::Group(child.group())
}

/// Partitions conjuncts of `pred` into (those referencing only `cols`,
/// the rest).
pub(crate) fn partition_conjuncts(pred: &Expr, cols: &BTreeSet<ColId>) -> (Vec<Expr>, Vec<Expr>) {
    let mut inside = Vec::new();
    let mut rest = Vec::new();
    for c in ruletest_expr::conjuncts(pred) {
        if ruletest_expr::columns_of(&c).is_subset(cols) {
            inside.push(c);
        } else {
            rest.push(c);
        }
    }
    (inside, rest)
}

/// True iff every column of `pred` is in `cols`.
pub(crate) fn pred_within(pred: &Expr, cols: &BTreeSet<ColId>) -> bool {
    ruletest_expr::columns_of(pred).is_subset(cols)
}
