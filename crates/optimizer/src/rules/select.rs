//! Selection (filter) transformation rules: merging, splitting, pushdown
//! through every operator that admits it, and outer-join simplification.

use super::util::*;
use crate::pattern::PatternTree;
use crate::rule::{Bound, NewChild, NewTree, Rule, RuleCtx};
use ruletest_expr::{conjoin, conjuncts, is_null_rejecting, Expr};
use ruletest_logical::{JoinKind, OpKind, Operator};
use std::collections::HashMap;

fn any() -> PatternTree {
    PatternTree::Any
}

fn select_op(predicate: Expr) -> Operator {
    Operator::Select { predicate }
}

fn sel_pattern(child: PatternTree) -> PatternTree {
    PatternTree::kind(OpKind::Select, vec![child])
}

/// `σp(σq(x)) -> σ(p AND q)(x)`.
fn select_merge(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate: p } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Select { predicate: q } = &inner.op else {
        return vec![];
    };
    vec![NewTree::new(
        select_op(Expr::and(p.clone(), q.clone())),
        vec![gref(&inner.children[0])],
    )]
}

/// `σ(c1 AND rest)(x) -> σc1(σrest(x))` — inverse of merge; the memo's
/// global deduplication keeps the pair finite.
fn select_split(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let parts = conjuncts(predicate);
    if parts.len() < 2 {
        return vec![];
    }
    let first = parts[0].clone();
    let rest = conjoin(parts[1..].to_vec());
    vec![NewTree::new(
        select_op(first),
        vec![NewChild::Tree(NewTree::new(
            select_op(rest),
            vec![gref(&b.children[0])],
        ))],
    )]
}

/// `σp(A JOIN B)`: conjuncts over only A go below the left input, over only
/// B below the right, the remainder stays above (inner joins).
fn select_push_below_inner_join(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join {
        kind,
        predicate: jp,
    } = &join.op
    else {
        return vec![];
    };
    debug_assert_eq!(*kind, JoinKind::Inner);
    let left_cols = group_cols(ctx, join.children[0].group());
    let right_cols = group_cols(ctx, join.children[1].group());
    let (to_left, rest) = partition_conjuncts(predicate, &left_cols);
    let (to_right, keep) = {
        let (tr, kp): (Vec<Expr>, Vec<Expr>) =
            rest.into_iter().partition(|c| pred_within(c, &right_cols));
        (tr, kp)
    };
    if to_left.is_empty() && to_right.is_empty() {
        return vec![];
    }
    let left_child = if to_left.is_empty() {
        gref(&join.children[0])
    } else {
        NewChild::Tree(NewTree::new(
            select_op(conjoin(to_left)),
            vec![gref(&join.children[0])],
        ))
    };
    let right_child = if to_right.is_empty() {
        gref(&join.children[1])
    } else {
        NewChild::Tree(NewTree::new(
            select_op(conjoin(to_right)),
            vec![gref(&join.children[1])],
        ))
    };
    let new_join = NewTree::new(
        Operator::Join {
            kind: JoinKind::Inner,
            predicate: jp.clone(),
        },
        vec![left_child, right_child],
    );
    let result = if keep.is_empty() {
        // The whole filter was absorbed — but the substitute must stay
        // schema-equivalent to the Select group, which it is (Select
        // preserves schema). A filterless result is fine.
        new_join
    } else {
        NewTree::new(select_op(conjoin(keep)), vec![NewChild::Tree(new_join)])
    };
    vec![result]
}

/// `σp(A LOJ/ROJ B)`: only conjuncts over the *preserved* side may move
/// below (pushing a null-supplying-side conjunct below an outer join is the
/// classic correctness bug this framework exists to catch).
fn select_push_below_outer_join(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join {
        kind,
        predicate: jp,
    } = &join.op
    else {
        return vec![];
    };
    let preserved_idx = match kind {
        JoinKind::LeftOuter => 0,
        JoinKind::RightOuter => 1,
        _ => return vec![],
    };
    let preserved_cols = group_cols(ctx, join.children[preserved_idx].group());
    let (push, keep) = partition_conjuncts(predicate, &preserved_cols);
    if push.is_empty() {
        return vec![];
    }
    let pushed = NewTree::new(
        select_op(conjoin(push)),
        vec![gref(&join.children[preserved_idx])],
    );
    let mut join_children = vec![gref(&join.children[0]), gref(&join.children[1])];
    join_children[preserved_idx] = NewChild::Tree(pushed);
    let new_join = NewTree::new(
        Operator::Join {
            kind: *kind,
            predicate: jp.clone(),
        },
        join_children,
    );
    let result = if keep.is_empty() {
        new_join
    } else {
        NewTree::new(select_op(conjoin(keep)), vec![NewChild::Tree(new_join)])
    };
    vec![result]
}

/// `σp(A SEMI/ANTI B)`: the output is a subset of A's rows, so any conjunct
/// (all reference A) commutes with the join.
fn select_push_below_semi_join(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join {
        kind,
        predicate: jp,
    } = &join.op
    else {
        return vec![];
    };
    if !matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti) {
        return vec![];
    }
    vec![NewTree::new(
        Operator::Join {
            kind: *kind,
            predicate: jp.clone(),
        },
        vec![
            NewChild::Tree(NewTree::new(
                select_op(predicate.clone()),
                vec![gref(&join.children[0])],
            )),
            gref(&join.children[1]),
        ],
    )]
}

/// `σp(π(x)) -> π(σp')(x)` where p' substitutes each projected expression
/// for its output column.
fn select_push_below_project(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(proj) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Project { outputs } = &proj.op else {
        return vec![];
    };
    let map: HashMap<_, _> = outputs.iter().cloned().collect();
    let rewritten = ruletest_expr::substitute(predicate, &map);
    vec![NewTree::new(
        Operator::Project {
            outputs: outputs.clone(),
        },
        vec![NewChild::Tree(NewTree::new(
            select_op(rewritten),
            vec![gref(&proj.children[0])],
        ))],
    )]
}

/// `π(σp(x)) -> σp'(π(x))` when every column of p survives the projection
/// as a bare column reference.
fn select_pull_above_project(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Project { outputs } = &b.op else {
        return vec![];
    };
    let Some(sel) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Select { predicate } = &sel.op else {
        return vec![];
    };
    // Build input-column -> output-column map for passthrough columns.
    let mut passthrough: HashMap<ruletest_common::ColId, ruletest_common::ColId> = HashMap::new();
    for (out, e) in outputs {
        if let Expr::Col(c) = e {
            passthrough.entry(*c).or_insert(*out);
        }
    }
    let pred_cols = ruletest_expr::columns_of(predicate);
    if !pred_cols.iter().all(|c| passthrough.contains_key(c)) {
        return vec![];
    }
    let rewritten = ruletest_expr::remap_columns(predicate, &passthrough);
    vec![NewTree::new(
        select_op(rewritten),
        vec![NewChild::Tree(NewTree::new(
            Operator::Project {
                outputs: outputs.clone(),
            },
            vec![gref(&sel.children[0])],
        ))],
    )]
}

/// `σp(A UNION ALL B) -> σpa(A) UNION ALL σpb(B)` with the predicate
/// remapped through each side's column map.
fn select_push_below_union(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(union) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::UnionAll {
        outputs,
        left_cols,
        right_cols,
    } = &union.op
    else {
        return vec![];
    };
    let to_left: HashMap<_, _> = outputs
        .iter()
        .copied()
        .zip(left_cols.iter().copied())
        .collect();
    let to_right: HashMap<_, _> = outputs
        .iter()
        .copied()
        .zip(right_cols.iter().copied())
        .collect();
    vec![NewTree::new(
        union.op.clone(),
        vec![
            NewChild::Tree(NewTree::new(
                select_op(ruletest_expr::remap_columns(predicate, &to_left)),
                vec![gref(&union.children[0])],
            )),
            NewChild::Tree(NewTree::new(
                select_op(ruletest_expr::remap_columns(predicate, &to_right)),
                vec![gref(&union.children[1])],
            )),
        ],
    )]
}

/// `σp(GbAgg(x))`: conjuncts referencing only grouping columns commute with
/// the aggregation (the precondition the paper's §1 example alludes to).
fn select_push_below_gbagg(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(agg) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::GbAgg { group_by, aggs } = &agg.op else {
        return vec![];
    };
    let group_set: std::collections::BTreeSet<_> = group_by.iter().copied().collect();
    let (push, keep) = partition_conjuncts(predicate, &group_set);
    if push.is_empty() {
        return vec![];
    }
    let inner = NewTree::new(
        Operator::GbAgg {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        vec![NewChild::Tree(NewTree::new(
            select_op(conjoin(push)),
            vec![gref(&agg.children[0])],
        ))],
    );
    let result = if keep.is_empty() {
        inner
    } else {
        NewTree::new(select_op(conjoin(keep)), vec![NewChild::Tree(inner)])
    };
    vec![result]
}

/// `σp(Sort(x)) -> Sort(σp(x))`.
fn select_push_below_sort(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(sort) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Sort { keys } = &sort.op else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::Sort { keys: keys.clone() },
        vec![NewChild::Tree(NewTree::new(
            select_op(predicate.clone()),
            vec![gref(&sort.children[0])],
        ))],
    )]
}

/// `σp(Distinct(x)) -> Distinct(σp(x))`.
fn select_push_below_distinct(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(d) = b.children[0].nested() else {
        return vec![];
    };
    if !matches!(d.op, Operator::Distinct) {
        return vec![];
    }
    vec![NewTree::new(
        Operator::Distinct,
        vec![NewChild::Tree(NewTree::new(
            select_op(predicate.clone()),
            vec![gref(&d.children[0])],
        ))],
    )]
}

/// `σp(A JOIN[Inner] B) -> A JOIN[p AND on] B` — merges the filter into the
/// join predicate (subsumes cross-product-to-inner-join).
fn select_into_inner_join(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: jp, .. } = &join.op else {
        return vec![];
    };
    let merged = if jp.is_true_lit() {
        predicate.clone()
    } else {
        Expr::and(predicate.clone(), jp.clone())
    };
    vec![NewTree::new(
        Operator::Join {
            kind: JoinKind::Inner,
            predicate: merged,
        },
        vec![gref(&join.children[0]), gref(&join.children[1])],
    )]
}

/// Outer-join simplification: a null-rejecting filter above an outer join
/// on the null-supplying side's columns converts the join to a stricter
/// kind (LOJ/ROJ -> INNER; FOJ -> LOJ/ROJ/INNER).
fn outer_join_simplify(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join {
        kind,
        predicate: jp,
    } = &join.op
    else {
        return vec![];
    };
    let left_cols = group_cols(ctx, join.children[0].group());
    let right_cols = group_cols(ctx, join.children[1].group());
    let rejects_left = is_null_rejecting(predicate, &left_cols);
    let rejects_right = is_null_rejecting(predicate, &right_cols);
    let new_kind = match kind {
        JoinKind::LeftOuter if rejects_right => JoinKind::Inner,
        JoinKind::RightOuter if rejects_left => JoinKind::Inner,
        JoinKind::FullOuter => match (rejects_left, rejects_right) {
            (true, true) => JoinKind::Inner,
            // Rejecting left-side NULLs drops the rows that pad the left,
            // i.e. the unmatched *right* rows: FOJ degrades to LOJ.
            (true, false) => JoinKind::LeftOuter,
            (false, true) => JoinKind::RightOuter,
            (false, false) => return vec![],
        },
        _ => return vec![],
    };
    vec![NewTree::new(
        select_op(predicate.clone()),
        vec![NewChild::Tree(NewTree::new(
            Operator::Join {
                kind: new_kind,
                predicate: jp.clone(),
            },
            vec![gref(&join.children[0]), gref(&join.children[1])],
        ))],
    )]
}

pub(super) fn rules() -> Vec<Rule> {
    vec![
        Rule::explore(
            "SelectMerge",
            sel_pattern(sel_pattern(any())),
            "always applicable",
            select_merge,
        ),
        Rule::explore(
            "SelectSplit",
            sel_pattern(any()),
            "predicate has at least two conjuncts",
            select_split,
        ),
        Rule::explore(
            "SelectPushBelowInnerJoin",
            sel_pattern(PatternTree::join(vec![JoinKind::Inner], any(), any())),
            "some conjunct references only one join input",
            select_push_below_inner_join,
        ),
        Rule::explore(
            "SelectPushBelowOuterJoin",
            sel_pattern(PatternTree::join(
                vec![JoinKind::LeftOuter, JoinKind::RightOuter],
                any(),
                any(),
            )),
            "some conjunct references only the preserved side",
            select_push_below_outer_join,
        ),
        Rule::explore(
            "SelectPushBelowSemiJoin",
            sel_pattern(PatternTree::join(
                vec![JoinKind::LeftSemi, JoinKind::LeftAnti],
                any(),
                any(),
            )),
            "always applicable (semi/anti output is a subset of the left input)",
            select_push_below_semi_join,
        ),
        Rule::explore(
            "SelectPushBelowProject",
            sel_pattern(PatternTree::kind(OpKind::Project, vec![any()])),
            "always applicable (predicate rewritten by substitution)",
            select_push_below_project,
        ),
        Rule::explore(
            "SelectPullAboveProject",
            PatternTree::kind(OpKind::Project, vec![sel_pattern(any())]),
            "every predicate column survives the projection as a bare column",
            select_pull_above_project,
        ),
        Rule::explore(
            "SelectPushBelowUnionAll",
            sel_pattern(PatternTree::kind(OpKind::UnionAll, vec![any(), any()])),
            "always applicable",
            select_push_below_union,
        ),
        Rule::explore(
            "SelectPushBelowGbAgg",
            sel_pattern(PatternTree::kind(OpKind::GbAgg, vec![any()])),
            "some conjunct references only grouping columns",
            select_push_below_gbagg,
        ),
        Rule::explore(
            "SelectPushBelowSort",
            sel_pattern(PatternTree::kind(OpKind::Sort, vec![any()])),
            "always applicable",
            select_push_below_sort,
        ),
        Rule::explore(
            "SelectPushBelowDistinct",
            sel_pattern(PatternTree::kind(OpKind::Distinct, vec![any()])),
            "always applicable",
            select_push_below_distinct,
        ),
        Rule::explore(
            "SelectIntoInnerJoin",
            sel_pattern(PatternTree::join(vec![JoinKind::Inner], any(), any())),
            "always applicable",
            select_into_inner_join,
        ),
        Rule::explore(
            "OuterJoinSimplify",
            sel_pattern(PatternTree::join(
                vec![
                    JoinKind::LeftOuter,
                    JoinKind::RightOuter,
                    JoinKind::FullOuter,
                ],
                any(),
                any(),
            )),
            "filter is null-rejecting on a null-supplying side",
            outer_join_simplify,
        ),
    ]
}
