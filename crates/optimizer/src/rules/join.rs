//! Join transformation rules.
//!
//! Includes the paper's running example (§3): the associativity of join and
//! left outer join — `R JOIN (S LOJ T) = (R JOIN S) LOJ T` when the join
//! predicate references only R and S — whose firing *enables* inner-join
//! commutativity on the new `(R JOIN S)` expression (a rule dependency).

use super::util::*;
use crate::pattern::PatternTree;
use crate::rule::{Bound, NewChild, NewTree, Rule, RuleCtx};
use ruletest_expr::{conjoin, try_col_eq_col, Expr};
use ruletest_logical::{JoinKind, OpKind, Operator};

fn any() -> PatternTree {
    PatternTree::Any
}

fn join_op(kind: JoinKind, predicate: Expr) -> Operator {
    Operator::Join { kind, predicate }
}

/// `A JOIN B -> B JOIN A` (inner joins; output columns are a set, so no
/// projection is needed).
fn inner_join_commute(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    vec![NewTree::new(
        join_op(JoinKind::Inner, predicate.clone()),
        vec![gref(&b.children[1]), gref(&b.children[0])],
    )]
}

/// `(A JOIN B) JOIN C -> A JOIN (B JOIN C)`, redistributing the combined
/// conjuncts: the new lower join receives those over B∪C, the upper join
/// the rest.
fn inner_join_assoc_left(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate: p, .. } = &b.op else {
        return vec![];
    };
    let Some(lower) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: q, .. } = &lower.op else {
        return vec![];
    };
    let (a, bb) = (&lower.children[0], &lower.children[1]);
    let c = &b.children[1];
    let mut bc_cols = group_cols(ctx, bb.group());
    bc_cols.extend(group_cols(ctx, c.group()));
    let mut all = ruletest_expr::conjuncts(p);
    all.extend(ruletest_expr::conjuncts(q));
    let (lower_parts, upper_parts): (Vec<Expr>, Vec<Expr>) =
        all.into_iter().partition(|e| pred_within(e, &bc_cols));
    vec![NewTree::new(
        join_op(JoinKind::Inner, conjoin(upper_parts)),
        vec![
            gref(a),
            NewChild::Tree(NewTree::new(
                join_op(JoinKind::Inner, conjoin(lower_parts)),
                vec![gref(bb), gref(c)],
            )),
        ],
    )]
}

/// `A JOIN (B JOIN C) -> (A JOIN B) JOIN C` — mirror of the above.
fn inner_join_assoc_right(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate: p, .. } = &b.op else {
        return vec![];
    };
    let Some(lower) = b.children[1].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: q, .. } = &lower.op else {
        return vec![];
    };
    let a = &b.children[0];
    let (bb, c) = (&lower.children[0], &lower.children[1]);
    let mut ab_cols = group_cols(ctx, a.group());
    ab_cols.extend(group_cols(ctx, bb.group()));
    let mut all = ruletest_expr::conjuncts(p);
    all.extend(ruletest_expr::conjuncts(q));
    let (lower_parts, upper_parts): (Vec<Expr>, Vec<Expr>) =
        all.into_iter().partition(|e| pred_within(e, &ab_cols));
    vec![NewTree::new(
        join_op(JoinKind::Inner, conjoin(upper_parts)),
        vec![
            NewChild::Tree(NewTree::new(
                join_op(JoinKind::Inner, conjoin(lower_parts)),
                vec![gref(a), gref(bb)],
            )),
            gref(c),
        ],
    )]
}

/// `A LOJ B -> B ROJ A`.
fn loj_commute(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    vec![NewTree::new(
        join_op(JoinKind::RightOuter, predicate.clone()),
        vec![gref(&b.children[1]), gref(&b.children[0])],
    )]
}

/// `A ROJ B -> B LOJ A`.
fn roj_commute(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    vec![NewTree::new(
        join_op(JoinKind::LeftOuter, predicate.clone()),
        vec![gref(&b.children[1]), gref(&b.children[0])],
    )]
}

/// `A FOJ B -> B FOJ A`.
fn foj_commute(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    vec![NewTree::new(
        join_op(JoinKind::FullOuter, predicate.clone()),
        vec![gref(&b.children[1]), gref(&b.children[0])],
    )]
}

/// The paper's §3 example: `R JOIN (S LOJ T) -> (R JOIN S) LOJ T`, valid
/// when the inner-join predicate references only R and S.
fn join_loj_assoc(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate: p, .. } = &b.op else {
        return vec![];
    };
    let r = &b.children[0];
    let Some(loj) = b.children[1].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: q, .. } = &loj.op else {
        return vec![];
    };
    let (s, t) = (&loj.children[0], &loj.children[1]);
    let mut rs_cols = group_cols(ctx, r.group());
    rs_cols.extend(group_cols(ctx, s.group()));
    if !pred_within(p, &rs_cols) {
        return vec![];
    }
    vec![NewTree::new(
        join_op(JoinKind::LeftOuter, q.clone()),
        vec![
            NewChild::Tree(NewTree::new(
                join_op(JoinKind::Inner, p.clone()),
                vec![gref(r), gref(s)],
            )),
            gref(t),
        ],
    )]
}

/// Inverse of the above: `(R JOIN S) LOJ T -> R JOIN (S LOJ T)`, valid when
/// the outer-join predicate references only S and T.
fn join_loj_assoc_inv(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate: q, .. } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: p, .. } = &inner.op else {
        return vec![];
    };
    let (r, s) = (&inner.children[0], &inner.children[1]);
    let t = &b.children[1];
    let mut st_cols = group_cols(ctx, s.group());
    st_cols.extend(group_cols(ctx, t.group()));
    if !pred_within(q, &st_cols) {
        return vec![];
    }
    // The inner predicate must also avoid T (guaranteed: it was validated
    // over R∪S), and must reference only R∪S so it can move up — it already
    // does. The rotated form re-checks p over R∪(S LOJ T) which is a
    // superset, so it stays valid.
    vec![NewTree::new(
        join_op(JoinKind::Inner, p.clone()),
        vec![
            gref(r),
            NewChild::Tree(NewTree::new(
                join_op(JoinKind::LeftOuter, q.clone()),
                vec![gref(s), gref(t)],
            )),
        ],
    )]
}

/// Distributes a left-row-driven join over a union on its left input:
/// `(A UNION ALL B) op C -> (A op C) UNION ALL (B op C)` for
/// op ∈ {JOIN, LOJ, SEMI, ANTI}.
fn join_distribute_union_left(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { kind, predicate } = &b.op else {
        return vec![];
    };
    if !matches!(
        kind,
        JoinKind::Inner | JoinKind::LeftOuter | JoinKind::LeftSemi | JoinKind::LeftAnti
    ) {
        return vec![];
    }
    let Some(union) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::UnionAll {
        outputs,
        left_cols,
        right_cols,
    } = &union.op
    else {
        return vec![];
    };
    let (ua, ub) = (&union.children[0], &union.children[1]);
    let c = &b.children[1];
    let to_left: std::collections::HashMap<_, _> = outputs
        .iter()
        .copied()
        .zip(left_cols.iter().copied())
        .collect();
    let to_right: std::collections::HashMap<_, _> = outputs
        .iter()
        .copied()
        .zip(right_cols.iter().copied())
        .collect();
    let pred_a = ruletest_expr::remap_columns(predicate, &to_left);
    let pred_b = ruletest_expr::remap_columns(predicate, &to_right);
    let join_a = NewTree::new(join_op(*kind, pred_a), vec![gref(ua), gref(c)]);
    let join_b = NewTree::new(join_op(*kind, pred_b), vec![gref(ub), gref(c)]);
    // The new union's outputs must equal this group's schema: the original
    // union outputs plus (for both-sides kinds) C's columns mapped to
    // themselves.
    let mut new_outputs = outputs.clone();
    let mut new_left = left_cols.clone();
    let mut new_right = right_cols.clone();
    if kind.emits_both_sides() {
        for ci in ctx.schema(c.group()) {
            new_outputs.push(ci.id);
            new_left.push(ci.id);
            new_right.push(ci.id);
        }
    }
    vec![NewTree::new(
        Operator::UnionAll {
            outputs: new_outputs,
            left_cols: new_left,
            right_cols: new_right,
        },
        vec![NewChild::Tree(join_a), NewChild::Tree(join_b)],
    )]
}

/// Distributes a join over a union on its right input:
/// `C op (A UNION ALL B) -> (C op A) UNION ALL (C op B)` for
/// op ∈ {JOIN, ROJ}.
fn join_distribute_union_right(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { kind, predicate } = &b.op else {
        return vec![];
    };
    if !matches!(kind, JoinKind::Inner | JoinKind::RightOuter) {
        return vec![];
    }
    let c = &b.children[0];
    let Some(union) = b.children[1].nested() else {
        return vec![];
    };
    let Operator::UnionAll {
        outputs,
        left_cols,
        right_cols,
    } = &union.op
    else {
        return vec![];
    };
    let (ua, ub) = (&union.children[0], &union.children[1]);
    let to_left: std::collections::HashMap<_, _> = outputs
        .iter()
        .copied()
        .zip(left_cols.iter().copied())
        .collect();
    let to_right: std::collections::HashMap<_, _> = outputs
        .iter()
        .copied()
        .zip(right_cols.iter().copied())
        .collect();
    let pred_a = ruletest_expr::remap_columns(predicate, &to_left);
    let pred_b = ruletest_expr::remap_columns(predicate, &to_right);
    let join_a = NewTree::new(join_op(*kind, pred_a), vec![gref(c), gref(ua)]);
    let join_b = NewTree::new(join_op(*kind, pred_b), vec![gref(c), gref(ub)]);
    let c_ids: Vec<_> = ctx.schema(c.group()).iter().map(|ci| ci.id).collect();
    let mut new_outputs = c_ids.clone();
    let mut new_left = c_ids.clone();
    let mut new_right = c_ids;
    new_outputs.extend(outputs.iter().copied());
    new_left.extend(left_cols.iter().copied());
    new_right.extend(right_cols.iter().copied());
    vec![NewTree::new(
        Operator::UnionAll {
            outputs: new_outputs,
            left_cols: new_left,
            right_cols: new_right,
        },
        vec![NewChild::Tree(join_a), NewChild::Tree(join_b)],
    )]
}

/// `A SEMI B -> project_A(A JOIN B)` when the probe side is a base table
/// and some equi conjunct hits one of its single-column unique keys (each
/// left row then matches at most one right row, so the inner join cannot
/// duplicate). A schema-dependent rule in the sense of §7.
fn semi_join_to_inner_on_key(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    let Some(get) = b.children[1].nested() else {
        return vec![];
    };
    let Operator::Get { table, cols } = &get.op else {
        return vec![];
    };
    let Ok(def) = ctx.db.catalog.table(*table) else {
        return vec![];
    };
    // One side of the equality must be a unique column of the probe table
    // and the other side must come from elsewhere (a genuine cross-side
    // conjunct) — otherwise uniqueness does not bound the match count.
    let ord_of = |col| cols.iter().position(|&g| g == col);
    let unique_hit = ruletest_expr::conjuncts(predicate).iter().any(|c| {
        try_col_eq_col(c).is_some_and(|(a, bcol)| match (ord_of(a), ord_of(bcol)) {
            (Some(ord), None) | (None, Some(ord)) => def.is_unique_column(ord),
            _ => false,
        })
    });
    if !unique_hit {
        return vec![];
    }
    let left_schema = ctx.schema(b.children[0].group());
    let outputs: Vec<_> = left_schema
        .iter()
        .map(|ci| (ci.id, Expr::col(ci.id)))
        .collect();
    vec![NewTree::new(
        Operator::Project { outputs },
        vec![NewChild::Tree(NewTree::new(
            join_op(JoinKind::Inner, predicate.clone()),
            vec![gref(&b.children[0]), gref(&b.children[1])],
        ))],
    )]
}

/// `A ANTI B -> project_A(filter[b IS NULL](A LOJ B))` where `b` is a right
/// column appearing in an equi conjunct (so matched rows always have it
/// non-null).
fn anti_join_to_loj_filter(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    let right_cols = group_cols(ctx, b.children[1].group());
    let probe = ruletest_expr::conjuncts(predicate).iter().find_map(|c| {
        try_col_eq_col(c).and_then(|(x, y)| {
            if right_cols.contains(&x) {
                Some(x)
            } else if right_cols.contains(&y) {
                Some(y)
            } else {
                None
            }
        })
    });
    let Some(probe_col) = probe else {
        return vec![];
    };
    let left_schema = ctx.schema(b.children[0].group());
    let outputs: Vec<_> = left_schema
        .iter()
        .map(|ci| (ci.id, Expr::col(ci.id)))
        .collect();
    vec![NewTree::new(
        Operator::Project { outputs },
        vec![NewChild::Tree(NewTree::new(
            Operator::Select {
                predicate: Expr::is_null(Expr::col(probe_col)),
            },
            vec![NewChild::Tree(NewTree::new(
                join_op(JoinKind::LeftOuter, predicate.clone()),
                vec![gref(&b.children[0]), gref(&b.children[1])],
            ))],
        ))],
    )]
}

/// The join rule set, in registration order.
pub(super) fn rules() -> Vec<Rule> {
    vec![
        Rule::explore(
            "InnerJoinCommute",
            PatternTree::join(vec![JoinKind::Inner], any(), any()),
            "always applicable",
            inner_join_commute,
        ),
        Rule::explore(
            "InnerJoinAssocLeft",
            PatternTree::join(
                vec![JoinKind::Inner],
                PatternTree::join(vec![JoinKind::Inner], any(), any()),
                any(),
            ),
            "always applicable (conjuncts redistribute; lower join may become a cross product)",
            inner_join_assoc_left,
        ),
        Rule::explore(
            "InnerJoinAssocRight",
            PatternTree::join(
                vec![JoinKind::Inner],
                any(),
                PatternTree::join(vec![JoinKind::Inner], any(), any()),
            ),
            "always applicable",
            inner_join_assoc_right,
        ),
        Rule::explore(
            "LojCommute",
            PatternTree::join(vec![JoinKind::LeftOuter], any(), any()),
            "always applicable",
            loj_commute,
        ),
        Rule::explore(
            "RojCommute",
            PatternTree::join(vec![JoinKind::RightOuter], any(), any()),
            "always applicable",
            roj_commute,
        ),
        Rule::explore(
            "FojCommute",
            PatternTree::join(vec![JoinKind::FullOuter], any(), any()),
            "always applicable",
            foj_commute,
        ),
        Rule::explore(
            "JoinLojAssoc",
            PatternTree::join(
                vec![JoinKind::Inner],
                any(),
                PatternTree::join(vec![JoinKind::LeftOuter], any(), any()),
            ),
            "inner-join predicate references only R and S",
            join_loj_assoc,
        ),
        Rule::explore(
            "JoinLojAssocInv",
            PatternTree::join(
                vec![JoinKind::LeftOuter],
                PatternTree::join(vec![JoinKind::Inner], any(), any()),
                any(),
            ),
            "outer-join predicate references only S and T",
            join_loj_assoc_inv,
        ),
        Rule::explore(
            "JoinDistributeUnionLeft",
            PatternTree::join(
                vec![
                    JoinKind::Inner,
                    JoinKind::LeftOuter,
                    JoinKind::LeftSemi,
                    JoinKind::LeftAnti,
                ],
                PatternTree::kind(OpKind::UnionAll, vec![any(), any()]),
                any(),
            ),
            "join kind is left-row-driven",
            join_distribute_union_left,
        ),
        Rule::explore(
            "JoinDistributeUnionRight",
            PatternTree::join(
                vec![JoinKind::Inner, JoinKind::RightOuter],
                any(),
                PatternTree::kind(OpKind::UnionAll, vec![any(), any()]),
            ),
            "join kind is right-row-driven",
            join_distribute_union_right,
        ),
        Rule::explore(
            "SemiJoinToInnerOnKey",
            PatternTree::join(
                vec![JoinKind::LeftSemi],
                any(),
                PatternTree::kind(OpKind::Get, vec![]),
            ),
            "an equi conjunct hits a single-column unique key of the probe-side base table",
            semi_join_to_inner_on_key,
        ),
        Rule::explore(
            "AntiJoinToLojFilter",
            PatternTree::join(vec![JoinKind::LeftAnti], any(), any()),
            "an equi conjunct provides a right-side probe column",
            anti_join_to_loj_filter,
        ),
    ]
}
