//! Union, projection, sort, and top-n transformation rules.

use super::util::*;
use crate::pattern::PatternTree;
use crate::rule::{Bound, NewChild, NewTree, Rule, RuleCtx};
use ruletest_logical::{OpKind, Operator};
use std::collections::HashMap;

fn any() -> PatternTree {
    PatternTree::Any
}

/// `A UNION ALL B -> B UNION ALL A` (side maps swap with the children).
fn union_all_commute(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::UnionAll {
        outputs,
        left_cols,
        right_cols,
    } = &b.op
    else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::UnionAll {
            outputs: outputs.clone(),
            left_cols: right_cols.clone(),
            right_cols: left_cols.clone(),
        },
        vec![gref(&b.children[1]), gref(&b.children[0])],
    )]
}

/// `(A UNION ALL B) UNION ALL C -> A UNION ALL (B UNION ALL C)`.
fn union_all_assoc(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::UnionAll {
        outputs: out2,
        left_cols: l2,
        right_cols: r2,
    } = &b.op
    else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::UnionAll {
        outputs: out1,
        left_cols: l1,
        right_cols: r1,
    } = &inner.op
    else {
        return vec![];
    };
    let (a, bb) = (&inner.children[0], &inner.children[1]);
    let c = &b.children[1];
    // For each final output, chase its source through the inner union.
    let mut ids = ctx.ids.borrow_mut();
    let mut top_left = Vec::with_capacity(out2.len());
    let mut top_right = Vec::with_capacity(out2.len());
    let mut mid_out = Vec::with_capacity(out2.len());
    let mut mid_left = Vec::with_capacity(out2.len());
    let mut mid_right = Vec::with_capacity(out2.len());
    for i in 0..out2.len() {
        let Some(j) = out1.iter().position(|&o| o == l2[i]) else {
            return vec![];
        };
        let fresh = ids.fresh();
        top_left.push(l1[j]);
        top_right.push(fresh);
        mid_out.push(fresh);
        mid_left.push(r1[j]);
        mid_right.push(r2[i]);
    }
    vec![NewTree::new(
        Operator::UnionAll {
            outputs: out2.clone(),
            left_cols: top_left,
            right_cols: top_right,
        },
        vec![
            gref(a),
            NewChild::Tree(NewTree::new(
                Operator::UnionAll {
                    outputs: mid_out,
                    left_cols: mid_left,
                    right_cols: mid_right,
                },
                vec![gref(bb), gref(c)],
            )),
        ],
    )]
}

/// `Distinct(A UNION ALL B) -> Distinct(Distinct(A) UNION ALL Distinct(B))`
/// — early duplicate elimination.
fn distinct_push_below_union(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    if !matches!(b.op, Operator::Distinct) {
        return vec![];
    }
    let Some(union) = b.children[0].nested() else {
        return vec![];
    };
    if !matches!(union.op, Operator::UnionAll { .. }) {
        return vec![];
    }
    vec![NewTree::new(
        Operator::Distinct,
        vec![NewChild::Tree(NewTree::new(
            union.op.clone(),
            vec![
                NewChild::Tree(NewTree::new(
                    Operator::Distinct,
                    vec![gref(&union.children[0])],
                )),
                NewChild::Tree(NewTree::new(
                    Operator::Distinct,
                    vec![gref(&union.children[1])],
                )),
            ],
        ))],
    )]
}

/// `π1(π2(x)) -> π(x)` — composes the projections by substitution.
fn project_merge(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Project { outputs: o1 } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Project { outputs: o2 } = &inner.op else {
        return vec![];
    };
    let map: HashMap<_, _> = o2.iter().cloned().collect();
    let merged = o1
        .iter()
        .map(|(id, e)| (*id, ruletest_expr::substitute(e, &map)))
        .collect();
    vec![NewTree::new(
        Operator::Project { outputs: merged },
        vec![gref(&inner.children[0])],
    )]
}

/// `π(A UNION ALL B) -> π'(A) UNION ALL π'(B)` with the projection
/// rewritten through each side's column map and fresh branch ids.
fn project_push_below_union(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Project { outputs } = &b.op else {
        return vec![];
    };
    let Some(union) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::UnionAll {
        outputs: uouts,
        left_cols,
        right_cols,
    } = &union.op
    else {
        return vec![];
    };
    let to_left: HashMap<_, _> = uouts
        .iter()
        .copied()
        .zip(left_cols.iter().copied())
        .collect();
    let to_right: HashMap<_, _> = uouts
        .iter()
        .copied()
        .zip(right_cols.iter().copied())
        .collect();
    let mut ids = ctx.ids.borrow_mut();
    let mut proj_a = Vec::with_capacity(outputs.len());
    let mut proj_b = Vec::with_capacity(outputs.len());
    let mut new_out = Vec::with_capacity(outputs.len());
    let mut new_l = Vec::with_capacity(outputs.len());
    let mut new_r = Vec::with_capacity(outputs.len());
    for (id, e) in outputs {
        let fa = ids.fresh();
        let fb = ids.fresh();
        proj_a.push((fa, ruletest_expr::remap_columns(e, &to_left)));
        proj_b.push((fb, ruletest_expr::remap_columns(e, &to_right)));
        new_out.push(*id);
        new_l.push(fa);
        new_r.push(fb);
    }
    vec![NewTree::new(
        Operator::UnionAll {
            outputs: new_out,
            left_cols: new_l,
            right_cols: new_r,
        },
        vec![
            NewChild::Tree(NewTree::new(
                Operator::Project { outputs: proj_a },
                vec![gref(&union.children[0])],
            )),
            NewChild::Tree(NewTree::new(
                Operator::Project { outputs: proj_b },
                vec![gref(&union.children[1])],
            )),
        ],
    )]
}

/// `Sort1(Sort2(x)) -> Sort1(x)` — the outer sort wins.
fn sort_collapse(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Sort { keys } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    if !matches!(inner.op, Operator::Sort { .. }) {
        return vec![];
    }
    vec![NewTree::new(
        Operator::Sort { keys: keys.clone() },
        vec![gref(&inner.children[0])],
    )]
}

/// `GbAgg(Sort(x)) -> GbAgg(x)` — aggregation is order-insensitive.
fn sort_elim_below_gbagg(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::GbAgg { .. } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    if !matches!(inner.op, Operator::Sort { .. }) {
        return vec![];
    }
    vec![NewTree::new(b.op.clone(), vec![gref(&inner.children[0])])]
}

/// `Distinct(Sort(x)) -> Distinct(x)`.
fn sort_elim_below_distinct(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    if !matches!(b.op, Operator::Distinct) {
        return vec![];
    }
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    if !matches!(inner.op, Operator::Sort { .. }) {
        return vec![];
    }
    vec![NewTree::new(
        Operator::Distinct,
        vec![gref(&inner.children[0])],
    )]
}

/// `Top[n,k](Top[m,k](x)) -> Top[min(n,m),k](x)` when the sort keys are
/// identical (same keys imply the same deterministic total order, so the
/// compositions agree).
fn top_top_collapse(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Top { n, keys } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Top {
        n: m,
        keys: inner_keys,
    } = &inner.op
    else {
        return vec![];
    };
    if keys != inner_keys {
        return vec![];
    }
    vec![NewTree::new(
        Operator::Top {
            n: (*n).min(*m),
            keys: keys.clone(),
        },
        vec![gref(&inner.children[0])],
    )]
}

/// `Top[n,k](Sort(x)) -> Top[n,k](x)` — Top imposes its own order.
fn top_sort_absorb(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Top { n, keys } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    if !matches!(inner.op, Operator::Sort { .. }) {
        return vec![];
    }
    vec![NewTree::new(
        Operator::Top {
            n: *n,
            keys: keys.clone(),
        },
        vec![gref(&inner.children[0])],
    )]
}

pub(super) fn rules() -> Vec<Rule> {
    vec![
        Rule::explore(
            "UnionAllCommute",
            PatternTree::kind(OpKind::UnionAll, vec![any(), any()]),
            "always applicable",
            union_all_commute,
        ),
        Rule::explore(
            "UnionAllAssoc",
            PatternTree::kind(
                OpKind::UnionAll,
                vec![
                    PatternTree::kind(OpKind::UnionAll, vec![any(), any()]),
                    any(),
                ],
            ),
            "always applicable",
            union_all_assoc,
        )
        .minting_fresh_ids(),
        Rule::explore(
            "DistinctPushBelowUnionAll",
            PatternTree::kind(
                OpKind::Distinct,
                vec![PatternTree::kind(OpKind::UnionAll, vec![any(), any()])],
            ),
            "always applicable",
            distinct_push_below_union,
        ),
        Rule::explore(
            "ProjectMerge",
            PatternTree::kind(
                OpKind::Project,
                vec![PatternTree::kind(OpKind::Project, vec![any()])],
            ),
            "always applicable (composition by substitution)",
            project_merge,
        ),
        Rule::explore(
            "ProjectPushBelowUnionAll",
            PatternTree::kind(
                OpKind::Project,
                vec![PatternTree::kind(OpKind::UnionAll, vec![any(), any()])],
            ),
            "always applicable",
            project_push_below_union,
        )
        .minting_fresh_ids(),
        Rule::explore(
            "SortCollapse",
            PatternTree::kind(
                OpKind::Sort,
                vec![PatternTree::kind(OpKind::Sort, vec![any()])],
            ),
            "always applicable (outer order wins)",
            sort_collapse,
        ),
        Rule::explore(
            "SortElimBelowGbAgg",
            PatternTree::kind(
                OpKind::GbAgg,
                vec![PatternTree::kind(OpKind::Sort, vec![any()])],
            ),
            "always applicable",
            sort_elim_below_gbagg,
        ),
        Rule::explore(
            "SortElimBelowDistinct",
            PatternTree::kind(
                OpKind::Distinct,
                vec![PatternTree::kind(OpKind::Sort, vec![any()])],
            ),
            "always applicable",
            sort_elim_below_distinct,
        ),
        Rule::explore(
            "TopTopCollapse",
            PatternTree::kind(
                OpKind::Top,
                vec![PatternTree::kind(OpKind::Top, vec![any()])],
            ),
            "identical sort keys on both Top operators",
            top_top_collapse,
        ),
        Rule::explore(
            "TopSortAbsorb",
            PatternTree::kind(
                OpKind::Top,
                vec![PatternTree::kind(OpKind::Sort, vec![any()])],
            ),
            "always applicable",
            top_sort_absorb,
        ),
    ]
}
