//! Aggregation transformation rules, including the paper's flagship example
//! of a precondition-laden rule: pushing a Group-By Aggregate below a join
//! (§1 cites [3]; we implement the Yan–Larson *eager aggregation* form,
//! which is unconditionally duplicate-correct because the join predicate's
//! columns are added to the partial grouping key).

use super::util::*;
use crate::pattern::PatternTree;
use crate::rule::{Bound, NewChild, NewTree, Rule, RuleCtx};
use ruletest_expr::{AggCall, AggFunc, Expr};
use ruletest_logical::{JoinKind, OpKind, Operator};
use std::collections::BTreeSet;

fn any() -> PatternTree {
    PatternTree::Any
}

/// `Distinct(x) -> GbAgg[all columns of x; no aggregates](x)`.
fn distinct_to_gbagg(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    if !matches!(b.op, Operator::Distinct) {
        return vec![];
    }
    let group_by: Vec<_> = ctx
        .schema(b.children[0].group())
        .iter()
        .map(|c| c.id)
        .collect();
    vec![NewTree::new(
        Operator::GbAgg {
            group_by,
            aggs: vec![],
        },
        vec![gref(&b.children[0])],
    )]
}

/// `GbAgg[G; F](x) -> GbAgg[G; combine(F)](GbAgg[G; F](x))` — the
/// local/global split. Well-defined for the whole supported aggregate set
/// (COUNT combines via SUM; SUM/MIN/MAX are self-combining).
fn gbagg_split_local_global(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::GbAgg { group_by, aggs } = &b.op else {
        return vec![];
    };
    let mut ids = ctx.ids.borrow_mut();
    let locals: Vec<AggCall> = aggs
        .iter()
        .map(|a| AggCall::new(a.func, a.arg, ids.fresh()))
        .collect();
    let globals: Vec<AggCall> = aggs
        .iter()
        .zip(&locals)
        .map(|(orig, local)| {
            AggCall::new(orig.func.combining_func(), Some(local.output), orig.output)
        })
        .collect();
    vec![NewTree::new(
        Operator::GbAgg {
            group_by: group_by.clone(),
            aggs: globals,
        },
        vec![NewChild::Tree(NewTree::new(
            Operator::GbAgg {
                group_by: group_by.clone(),
                aggs: locals,
            },
            vec![gref(&b.children[0])],
        ))],
    )]
}

/// Shared implementation of eager aggregation for either join input.
///
/// `GbAgg[G; F](A JOIN_p B)` with every aggregate argument from side S
/// becomes `GbAgg[G; combine(F)]( partial JOIN_p other )` where
/// `partial = GbAgg[(G ∪ cols(p)) ∩ cols(S); F](S)`.
///
/// Correct for inner joins because collapsing S-rows that agree on the
/// partial grouping key (which includes every join-predicate column of S)
/// does not change which other-side rows each collapsed group joins with,
/// and the global combine re-expands multiplicities exactly.
fn eager_push(ctx: &RuleCtx, b: &Bound, side: usize) -> Vec<NewTree> {
    let Operator::GbAgg { group_by, aggs } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join { kind, predicate } = &join.op else {
        return vec![];
    };
    if *kind != JoinKind::Inner {
        return vec![];
    }
    let side_cols = group_cols(ctx, join.children[side].group());
    // Every aggregate argument must come from this side. COUNT(*) has no
    // argument and is side-agnostic.
    if !aggs
        .iter()
        .all(|a| a.arg.is_none_or(|c| side_cols.contains(&c)))
    {
        return vec![];
    }
    // A scalar global aggregate (empty G) turns COUNT's empty-input result
    // from 0 into SUM-over-nothing = NULL; exclude that combination.
    if group_by.is_empty()
        && aggs
            .iter()
            .any(|a| matches!(a.func, AggFunc::Count | AggFunc::CountStar))
    {
        return vec![];
    }
    // Partial grouping key: grouping and join-predicate columns of this side.
    let mut partial_keys: BTreeSet<_> = group_by
        .iter()
        .copied()
        .filter(|c| side_cols.contains(c))
        .collect();
    partial_keys.extend(
        ruletest_expr::columns_of(predicate)
            .into_iter()
            .filter(|c| side_cols.contains(c)),
    );
    let mut ids = ctx.ids.borrow_mut();
    let locals: Vec<AggCall> = aggs
        .iter()
        .map(|a| AggCall::new(a.func, a.arg, ids.fresh()))
        .collect();
    let globals: Vec<AggCall> = aggs
        .iter()
        .zip(&locals)
        .map(|(orig, local)| {
            AggCall::new(orig.func.combining_func(), Some(local.output), orig.output)
        })
        .collect();
    let partial = NewTree::new(
        Operator::GbAgg {
            group_by: partial_keys.into_iter().collect(),
            aggs: locals,
        },
        vec![gref(&join.children[side])],
    );
    let mut join_children = vec![gref(&join.children[0]), gref(&join.children[1])];
    join_children[side] = NewChild::Tree(partial);
    vec![NewTree::new(
        Operator::GbAgg {
            group_by: group_by.clone(),
            aggs: globals,
        },
        vec![NewChild::Tree(NewTree::new(
            Operator::Join {
                kind: JoinKind::Inner,
                predicate: predicate.clone(),
            },
            join_children,
        ))],
    )]
}

fn eager_gbagg_push_left(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    eager_push(ctx, b, 0)
}

fn eager_gbagg_push_right(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    eager_push(ctx, b, 1)
}

/// `GbAgg[G; F](Get(T)) -> Project` when G covers a non-nullable unique key
/// of T: every row is its own group, so COUNT(*) is 1 and SUM/MIN/MAX of a
/// single value is the value itself. COUNT(col) is excluded (it would need
/// a conditional expression). A schema-dependent rule in the sense of §7.
fn gbagg_eliminate_on_key(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::GbAgg { group_by, aggs } = &b.op else {
        return vec![];
    };
    let Some(get) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Get { table, cols } = &get.op else {
        return vec![];
    };
    let Ok(def) = ctx.db.catalog.table(*table) else {
        return vec![];
    };
    let ordinals: Vec<usize> = group_by
        .iter()
        .filter_map(|g| cols.iter().position(|c| c == g))
        .collect();
    if ordinals.len() != group_by.len() || !def.ordinals_cover_key(&ordinals) {
        return vec![];
    }
    // The covering key must be non-nullable (NULL keys would not be unique
    // group identities). Primary keys are non-null by construction; check
    // anyway for secondary unique keys.
    let covering_non_null = {
        let check = |key: &[usize]| {
            key.iter().all(|k| ordinals.contains(k))
                && key.iter().all(|&k| !def.columns[k].nullable)
        };
        check(&def.primary_key) || def.unique_keys.iter().any(|k| check(k))
    };
    if !covering_non_null {
        return vec![];
    }
    if aggs.iter().any(|a| a.func == AggFunc::Count) {
        return vec![];
    }
    let mut outputs: Vec<(ruletest_common::ColId, Expr)> =
        group_by.iter().map(|&g| (g, Expr::col(g))).collect();
    for a in aggs {
        let e = match a.func {
            AggFunc::CountStar => Expr::lit(1i64),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                Expr::col(a.arg.expect("non-star aggregates have arguments"))
            }
            AggFunc::Count => unreachable!("excluded above"),
        };
        outputs.push((a.output, e));
    }
    vec![NewTree::new(
        Operator::Project { outputs },
        vec![gref(&b.children[0])],
    )]
}

pub(super) fn rules() -> Vec<Rule> {
    vec![
        Rule::explore(
            "DistinctToGbAgg",
            PatternTree::kind(OpKind::Distinct, vec![any()]),
            "always applicable",
            distinct_to_gbagg,
        ),
        Rule::explore(
            "GbAggSplitLocalGlobal",
            PatternTree::kind(OpKind::GbAgg, vec![any()]),
            "all aggregates decomposable (always true for the supported set)",
            gbagg_split_local_global,
        )
        .minting_fresh_ids(),
        Rule::explore(
            "EagerGbAggPushBelowJoinLeft",
            PatternTree::kind(
                OpKind::GbAgg,
                vec![PatternTree::join(vec![JoinKind::Inner], any(), any())],
            ),
            "all aggregate arguments from the left input; no COUNT under a scalar aggregate",
            eager_gbagg_push_left,
        )
        .minting_fresh_ids(),
        Rule::explore(
            "EagerGbAggPushBelowJoinRight",
            PatternTree::kind(
                OpKind::GbAgg,
                vec![PatternTree::join(vec![JoinKind::Inner], any(), any())],
            ),
            "all aggregate arguments from the right input; no COUNT under a scalar aggregate",
            eager_gbagg_push_right,
        )
        .minting_fresh_ids(),
        Rule::explore(
            "GbAggEliminateOnKey",
            PatternTree::kind(OpKind::GbAgg, vec![PatternTree::kind(OpKind::Get, vec![])]),
            "grouping columns cover a non-nullable unique key; no COUNT(col) aggregate",
            gbagg_eliminate_on_key,
        ),
    ]
}
