//! Physical operators and plans.
//!
//! Implementation rules (§2.1) turn logical operators into these physical
//! alternatives. Required physical properties (sort order) are simplified
//! away: order-sensitive algorithms (merge join, stream aggregate) sort
//! their inputs internally and carry that cost themselves — see DESIGN.md.

use ruletest_common::{ColId, TableId, Value};
use ruletest_expr::{AggCall, Expr};
use ruletest_logical::{JoinKind, Schema, SortKey};

/// A physical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Full scan of a base table.
    SeqScan { table: TableId, cols: Vec<ColId> },
    /// Primary-key point lookup (single-column keys), with a residual
    /// filter for the remaining conjuncts. Produced by absorbing a
    /// `Select(Get)` match.
    IndexSeek {
        table: TableId,
        cols: Vec<ColId>,
        key: Value,
        residual: Expr,
    },
    /// Predicate filter.
    Filter { predicate: Expr },
    /// Computing projection.
    Compute { outputs: Vec<(ColId, Expr)> },
    /// Nested-loops join; handles every join kind and arbitrary predicates.
    NLJoin { kind: JoinKind, predicate: Expr },
    /// Hash join on equi-key columns with a residual predicate evaluated as
    /// part of the match condition (required for outer/semi/anti kinds).
    HashJoin {
        kind: JoinKind,
        left_keys: Vec<ColId>,
        right_keys: Vec<ColId>,
        residual: Expr,
    },
    /// Sort-merge join (inner only), sorting both inputs internally.
    MergeJoin {
        left_key: ColId,
        right_key: ColId,
        residual: Expr,
    },
    /// Hash aggregation.
    HashAgg {
        group_by: Vec<ColId>,
        aggs: Vec<AggCall>,
    },
    /// Sort-based aggregation (sorts internally).
    StreamAgg {
        group_by: Vec<ColId>,
        aggs: Vec<AggCall>,
    },
    /// Bag-union concatenation; side column maps mirror the logical
    /// `UnionAll` (id-based, per output position).
    Concat {
        outputs: Vec<ColId>,
        left_cols: Vec<ColId>,
        right_cols: Vec<ColId>,
    },
    /// Hash-based duplicate elimination.
    HashDistinct,
    /// Full sort.
    SortOp { keys: Vec<SortKey> },
    /// Top-N with deterministic full-row tie-break.
    TopN { n: u64, keys: Vec<SortKey> },
}

impl PhysOp {
    /// Short name for EXPLAIN output.
    pub fn name(&self) -> &'static str {
        match self {
            PhysOp::SeqScan { .. } => "SeqScan",
            PhysOp::IndexSeek { .. } => "IndexSeek",
            PhysOp::Filter { .. } => "Filter",
            PhysOp::Compute { .. } => "Compute",
            PhysOp::NLJoin { .. } => "NLJoin",
            PhysOp::HashJoin { .. } => "HashJoin",
            PhysOp::MergeJoin { .. } => "MergeJoin",
            PhysOp::HashAgg { .. } => "HashAgg",
            PhysOp::StreamAgg { .. } => "StreamAgg",
            PhysOp::Concat { .. } => "Concat",
            PhysOp::HashDistinct => "HashDistinct",
            PhysOp::SortOp { .. } => "Sort",
            PhysOp::TopN { .. } => "TopN",
        }
    }
}

/// An executable physical plan tree with derived schema and estimates.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub op: PhysOp,
    pub children: Vec<PhysicalPlan>,
    /// Output schema (column ids in output position order).
    pub schema: Schema,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated total cost of the subtree, in abstract optimizer units —
    /// the `Cost(q)` / `Cost(q, ¬R)` of the paper.
    pub est_cost: f64,
}

impl PhysicalPlan {
    /// Number of physical operators.
    pub fn op_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PhysicalPlan::op_count)
            .sum::<usize>()
    }

    /// Structural equality of the operator trees (ignores estimates).
    ///
    /// Used by correctness testing: when `Plan(q)` and `Plan(q, ¬R)` are
    /// identical "it is not necessary to execute the query" (§2.3).
    pub fn same_shape(&self, other: &PhysicalPlan) -> bool {
        self.op == other.op
            && self.children.len() == other.children.len()
            && self
                .children
                .iter()
                .zip(&other.children)
                .all(|(a, b)| a.same_shape(b))
    }

    /// EXPLAIN-style rendering with estimates.
    pub fn explain(&self) -> String {
        fn go(p: &PhysicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{} (rows={:.0}, cost={:.1})\n",
                p.op.name(),
                p.est_rows,
                p.est_cost
            ));
            for c in &p.children {
                go(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(table: u32) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysOp::SeqScan {
                table: TableId(table),
                cols: vec![ColId(0)],
            },
            children: vec![],
            schema: vec![],
            est_rows: 10.0,
            est_cost: 10.0,
        }
    }

    #[test]
    fn same_shape_ignores_estimates() {
        let mut a = leaf(0);
        let mut b = leaf(0);
        b.est_cost = 999.0;
        assert!(a.same_shape(&b));
        a.op = PhysOp::SeqScan {
            table: TableId(1),
            cols: vec![ColId(0)],
        };
        assert!(!a.same_shape(&b));
    }

    #[test]
    fn same_shape_recurses() {
        let parent = |child: PhysicalPlan| PhysicalPlan {
            op: PhysOp::HashDistinct,
            children: vec![child],
            schema: vec![],
            est_rows: 1.0,
            est_cost: 1.0,
        };
        assert!(parent(leaf(0)).same_shape(&parent(leaf(0))));
        assert!(!parent(leaf(0)).same_shape(&parent(leaf(1))));
        assert!(!parent(leaf(0)).same_shape(&leaf(0)));
    }

    #[test]
    fn explain_and_counts() {
        let p = PhysicalPlan {
            op: PhysOp::HashDistinct,
            children: vec![leaf(0)],
            schema: vec![],
            est_rows: 5.0,
            est_cost: 25.0,
        };
        assert_eq!(p.op_count(), 2);
        let text = p.explain();
        assert!(text.starts_with("HashDistinct"));
        assert!(text.contains("\n  SeqScan"));
    }
}
