//! Sharded optimizer-invocation cache.
//!
//! A testing campaign optimizes the *same* logical tree under the *same*
//! rule mask many times: generation re-checks its own output, bipartite
//! edge probing recomputes `Plan(q, ¬R)` for targets sharing a rule set,
//! and correctness validation re-optimizes every `Plan(q)` per assignment.
//! Since [`Optimizer::optimize_with`](crate::Optimizer::optimize_with) is
//! a pure function of `(tree, mask, budgets)`, those repeats are pure
//! waste — this cache dedupes them.
//!
//! The cache is sharded (`Mutex<HashMap>` per shard, shard chosen by key
//! fingerprint) so concurrent campaign workers rarely contend, and every
//! entry stores the **full key** (tree + canonical mask + budgets), so a
//! fingerprint collision can never return a wrong plan. Results are
//! shared as `Arc<OptimizeResult>` — a hit costs one clone of a pointer.
//!
//! Caching never changes observable results (optimization is
//! deterministic; the determinism suite asserts cached ≡ uncached), only
//! the invocation count — which is exactly the §5.3.1 / Figure 14 cost
//! metric the campaign tries to minimize.

use crate::optimizer::{OptimizeResult, OptimizerConfig};
use ruletest_common::RuleId;
use ruletest_logical::LogicalTree;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Full cache key: the logical tree plus everything that can change the
/// optimization outcome.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    tree: LogicalTree,
    /// Canonical mask form (ascending disabled ids) — two masks built in
    /// different orders or with different backing lengths compare equal.
    disabled: Vec<RuleId>,
    max_exprs: usize,
    max_passes: usize,
    /// Hard memo-growth cap, part of the key because it changes whether
    /// an invocation succeeds at all. The wall-clock `deadline` is
    /// deliberately *excluded*: timed-out computes are errors and never
    /// cached, and a cached result is valid under any deadline.
    hard_max_exprs: Option<usize>,
}

impl CacheKey {
    pub fn new(tree: &LogicalTree, config: &OptimizerConfig) -> Self {
        Self {
            tree: tree.clone(),
            disabled: config.mask.disabled_rules(),
            max_exprs: config.max_exprs,
            max_passes: config.max_passes,
            hard_max_exprs: config.hard_max_exprs,
        }
    }

    /// The logical tree this key was built from.
    pub fn tree(&self) -> &LogicalTree {
        &self.tree
    }

    /// Canonical (ascending) disabled rule ids.
    pub fn disabled(&self) -> &[RuleId] {
        &self.disabled
    }

    pub fn max_exprs(&self) -> usize {
        self.max_exprs
    }

    pub fn max_passes(&self) -> usize {
        self.max_passes
    }

    pub fn hard_max_exprs(&self) -> Option<usize> {
        self.hard_max_exprs
    }

    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Cache observability counters (monotonic totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Shard flushes forced by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded cache. Cheap to share via the owning [`crate::Optimizer`];
/// all methods take `&self`.
pub struct OptCache {
    shards: Vec<Mutex<HashMap<CacheKey, Arc<OptimizeResult>>>>,
    /// Entries per shard before the shard is flushed wholesale. Epoch
    /// flushing keeps the hot path branch-free; eviction only affects
    /// future hit rates, never results.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for OptCache {
    fn default() -> Self {
        Self::new(16, 4096)
    }
}

impl OptCache {
    /// `shards` mutex-protected maps of at most `shard_capacity` entries.
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: shard_capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Arc<OptimizeResult>>> {
        &self.shards[(key.fingerprint() % self.shards.len() as u64) as usize]
    }

    /// Returns the cached result for `key`, counting a hit or miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<OptimizeResult>> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a computed result. Concurrent inserts of the same key are
    /// fine: optimization is deterministic, so both values are identical.
    /// Returns `true` when the key was not already present — the caller
    /// that "wins" a racing duplicate compute, which is what telemetry
    /// uses to count each unique optimization exactly once.
    pub fn insert(&self, key: CacheKey, value: Arc<OptimizeResult>) -> bool {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if shard.len() >= self.shard_capacity {
            shard.clear();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.insert(key, value).is_none()
    }

    /// Total entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::RuleMask;

    fn dummy_result() -> Arc<OptimizeResult> {
        Arc::new(OptimizeResult {
            plan: crate::physical::PhysicalPlan {
                op: crate::physical::PhysOp::HashDistinct,
                children: vec![],
                schema: vec![],
                est_rows: 1.0,
                est_cost: 1.0,
            },
            cost: 1.0,
            rule_set: Default::default(),
            rule_dependencies: Default::default(),
            groups: 0,
            exprs: 0,
            truncated: false,
        })
    }

    fn leaf(tag: u32) -> LogicalTree {
        LogicalTree::get_with_cols(
            ruletest_common::TableId(tag),
            vec![ruletest_common::ColId(tag)],
        )
    }

    #[test]
    fn mask_form_is_canonical() {
        let tree = leaf(0);
        let a = CacheKey::new(
            &tree,
            &OptimizerConfig {
                mask: RuleMask::disabling(&[RuleId(5), RuleId(2)]),
                ..Default::default()
            },
        );
        let mut mask = RuleMask::disabling(&[RuleId(2), RuleId(5), RuleId(90)]);
        mask.enable(RuleId(90)); // leaves a longer backing vec behind
        let b = CacheKey::new(
            &tree,
            &OptimizerConfig {
                mask,
                ..Default::default()
            },
        );
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn budgets_are_part_of_the_key() {
        let tree = leaf(0);
        let a = CacheKey::new(&tree, &OptimizerConfig::default());
        let b = CacheKey::new(
            &tree,
            &OptimizerConfig {
                max_exprs: 10,
                ..Default::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn deadline_is_not_part_of_the_key_but_hard_cap_is() {
        let tree = leaf(0);
        let a = CacheKey::new(&tree, &OptimizerConfig::default());
        let timed = CacheKey::new(
            &tree,
            &OptimizerConfig {
                deadline: ruletest_common::Deadline::after_ms(5),
                ..Default::default()
            },
        );
        // Wall-clock state never addresses cached results.
        assert_eq!(a, timed);
        let capped = CacheKey::new(
            &tree,
            &OptimizerConfig {
                hard_max_exprs: Some(100),
                ..Default::default()
            },
        );
        assert_ne!(a, capped);
    }

    #[test]
    fn lookup_insert_roundtrip_and_stats() {
        let cache = OptCache::new(4, 64);
        let key = CacheKey::new(&leaf(1), &OptimizerConfig::default());
        assert!(cache.lookup(&key).is_none());
        cache.insert(key.clone(), dummy_result());
        assert!(cache.lookup(&key).is_some());
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn insert_reports_first_insertion() {
        let cache = OptCache::new(4, 64);
        let key = CacheKey::new(&leaf(9), &OptimizerConfig::default());
        assert!(
            cache.insert(key.clone(), dummy_result()),
            "first insert wins"
        );
        assert!(!cache.insert(key, dummy_result()), "duplicate loses");
    }

    #[test]
    fn capacity_bound_flushes_the_shard() {
        let cache = OptCache::new(1, 8);
        for tag in 0..100u32 {
            let key = CacheKey::new(&leaf(tag), &OptimizerConfig::default());
            cache.insert(key, dummy_result());
        }
        assert!(cache.len() <= 8, "shard exceeded its capacity");
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(OptCache::new(8, 1024));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let key = CacheKey::new(&leaf(i % 50), &OptimizerConfig::default());
                        if cache.lookup(&key).is_none() {
                            cache.insert(key, dummy_result());
                        }
                        let _ = t;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 50);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
    }
}
