//! A Cascades-style transformation-rule-based query optimizer.
//!
//! This crate is the substrate the paper instruments (§2.1): a top-down
//! optimizer whose search space is defined by *transformation rules* —
//! exploration rules producing equivalent logical expressions and
//! implementation rules producing physical alternatives. On top of the
//! classic architecture it provides the three extensions the testing
//! framework needs (§2.3):
//!
//! 1. **Rule tracing** — [`OptimizeResult::rule_set`] is `RuleSet(q)`, the
//!    set of rules exercised while optimizing a query.
//! 2. **Rule masking** — [`RuleMask`] disables any subset of rules for one
//!    optimization, yielding `Plan(q, ¬R)` and `Cost(q, ¬R)`.
//! 3. **Pattern export** — [`Optimizer::rule_pattern`] returns the pattern
//!    tree of any rule (and [`pattern::PatternTree::to_xml`] serializes it,
//!    mirroring the paper's XML-returning server API in §3.1).

pub mod cache;
pub mod cost;
pub mod mask;
pub mod memo;
pub mod optimizer;
pub mod pattern;
pub mod persist;
pub mod physical;
pub mod rule;
pub mod rules;
pub mod rules_impl;

pub use cache::{CacheKey, CacheStats, OptCache};
pub use mask::RuleMask;
pub use memo::{GroupId, Memo};
pub use optimizer::{
    match_bindings, OptimizeResult, Optimizer, OptimizerConfig, SubstituteAuditor,
};
pub use pattern::{OpMatcher, PatternTree};
pub use persist::{campaign_fingerprint, Fnv64, SnapshotStore, WarmHit};
pub use physical::{PhysOp, PhysicalPlan};
pub use rule::{
    Bound, BoundChild, NewChild, NewTree, PhysCandidate, Rule, RuleAction, RuleCtx, RuleKind,
};
