//! The memo: groups of logically equivalent expressions.
//!
//! The memo deduplicates expressions globally — inserting a substitute that
//! structurally equals an existing expression is a no-op — which is what
//! keeps exploration to a fixpoint finite even with inverse rule pairs
//! (merge/split, commute twice, ...).

use crate::rule::{NewChild, NewTree};
use ruletest_common::{Error, Result};
use ruletest_logical::{output_schema, Operator, Schema};
use ruletest_storage::Database;
use std::collections::HashMap;
use std::fmt;

/// Index of a group in the memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One logical expression inside a group: an operator whose children are
/// groups.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupExpr {
    pub op: Operator,
    pub children: Vec<GroupId>,
}

/// A set of logically equivalent expressions sharing an output schema and a
/// cardinality estimate.
#[derive(Debug, Clone)]
pub struct Group {
    pub exprs: Vec<GroupExpr>,
    /// Per-expression provenance flag, aligned with `exprs`: `true` when
    /// the expression's derivation from the seed tree used no fresh-id
    /// minting rule. Fresh-id rules fire only on organic expressions —
    /// an intrinsic (mask-independent) property that keeps the exploration
    /// fixpoint finite without order-dependent throttling.
    pub organic: Vec<bool>,
    /// Which rule created each expression (`None` for the seed tree) —
    /// backs the §7 "rule r2 exercised on an expression obtained as a
    /// result of exercising rule r1" interaction tracking.
    pub created_by: Vec<Option<ruletest_common::RuleId>>,
    pub schema: Schema,
    /// Estimated output rows (a logical property: computed once from the
    /// first expression inserted, which is the canonical one).
    pub est_rows: f64,
}

/// The memo structure.
pub struct Memo {
    groups: Vec<Group>,
    dedup: HashMap<GroupExpr, GroupId>,
}

impl Memo {
    pub fn new() -> Self {
        Self {
            groups: Vec::new(),
            dedup: HashMap::new(),
        }
    }

    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0 as usize]
    }

    pub fn schema(&self, id: GroupId) -> &Schema {
        &self.group(id).schema
    }

    pub fn est_rows(&self, id: GroupId) -> f64 {
        self.group(id).est_rows
    }

    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    pub fn num_exprs(&self) -> usize {
        self.groups.iter().map(|g| g.exprs.len()).sum()
    }

    /// Inserts a substitute. `target` is `Some(g)` when the substitute is
    /// equivalent to group `g` (the normal rule case) and `None` when a new
    /// group should be created for it (sub-expressions minted by rules).
    /// `organic` is false when the substitute was produced by (or derives
    /// from) a fresh-id minting rule — see [`Group::organic`].
    ///
    /// Returns the group the root landed in and whether anything new was
    /// added anywhere in the tree.
    pub fn insert(
        &mut self,
        db: &Database,
        tree: &NewTree,
        target: Option<GroupId>,
        organic: bool,
    ) -> Result<(GroupId, bool)> {
        self.insert_created_by(db, tree, target, organic, None)
    }

    /// Like [`Memo::insert`], recording the rule that produced the
    /// substitute.
    pub fn insert_created_by(
        &mut self,
        db: &Database,
        tree: &NewTree,
        target: Option<GroupId>,
        organic: bool,
        creator: Option<ruletest_common::RuleId>,
    ) -> Result<(GroupId, bool)> {
        let mut any_new = false;
        let mut child_ids = Vec::with_capacity(tree.children.len());
        for c in &tree.children {
            match c {
                NewChild::Group(g) => {
                    if g.0 as usize >= self.groups.len() {
                        return Err(Error::internal(format!("dangling group reference {g}")));
                    }
                    child_ids.push(*g);
                }
                NewChild::Tree(t) => {
                    let (g, n) = self.insert_created_by(db, t, None, organic, creator)?;
                    any_new |= n;
                    child_ids.push(g);
                }
            }
        }
        let expr = GroupExpr {
            op: tree.op.clone(),
            children: child_ids,
        };
        let (g, n) = self.add_expr(db, expr, target, organic, creator)?;
        Ok((g, any_new || n))
    }

    /// True iff expression `ei` of group `g` is organic.
    pub fn is_organic(&self, g: GroupId, ei: usize) -> bool {
        self.groups[g.0 as usize].organic[ei]
    }

    /// The rule that created expression `ei` of group `g`, if any.
    pub fn created_by(&self, g: GroupId, ei: usize) -> Option<ruletest_common::RuleId> {
        self.groups[g.0 as usize].created_by[ei]
    }

    /// Adds a single expression, deduplicating globally.
    fn add_expr(
        &mut self,
        db: &Database,
        expr: GroupExpr,
        target: Option<GroupId>,
        organic: bool,
        creator: Option<ruletest_common::RuleId>,
    ) -> Result<(GroupId, bool)> {
        if let Some(&existing) = self.dedup.get(&expr) {
            // Already known. An organic re-derivation upgrades the stored
            // flag.
            if organic {
                let group = &mut self.groups[existing.0 as usize];
                if let Some(pos) = group.exprs.iter().position(|e| *e == expr) {
                    group.organic[pos] = true;
                }
            }
            // If the caller proved this expression equivalent to a
            // *different* group, record it there too (full Cascades would
            // merge the groups). Membership placement must not depend on
            // which derivation happened to run first — that would make the
            // searched plan space, and thus the best cost, depend on the
            // rule mask in non-monotonic ways.
            if let Some(target) = target {
                if target != existing {
                    let group = &self.groups[target.0 as usize];
                    if !group.exprs.contains(&expr) {
                        let child_schemas: Vec<&Schema> =
                            expr.children.iter().map(|&c| self.schema(c)).collect();
                        let schema = output_schema(&db.catalog, &expr.op, &child_schemas)?;
                        let tgroup = &self.groups[target.0 as usize];
                        if !same_shape(&tgroup.schema, &schema) {
                            return Err(Error::internal(format!(
                                "substitute schema mismatch in {target}: op {}",
                                expr.op.label()
                            )));
                        }
                        let tgroup = &mut self.groups[target.0 as usize];
                        tgroup.exprs.push(expr);
                        tgroup.organic.push(organic);
                        tgroup.created_by.push(creator);
                        return Ok((target, true));
                    }
                    return Ok((target, false));
                }
            }
            return Ok((existing, false));
        }
        let child_schemas: Vec<&Schema> = expr.children.iter().map(|&c| self.schema(c)).collect();
        let schema = output_schema(&db.catalog, &expr.op, &child_schemas)?;
        let gid = match target {
            Some(g) => {
                let group = &self.groups[g.0 as usize];
                if !same_shape(&group.schema, &schema) {
                    return Err(Error::internal(format!(
                        "substitute schema mismatch in {g}: {:?} vs {:?} (op {})",
                        group.schema,
                        schema,
                        expr.op.label()
                    )));
                }
                g
            }
            None => {
                let child_rows: Vec<f64> =
                    expr.children.iter().map(|&c| self.est_rows(c)).collect();
                let est = crate::cost::estimate_rows(db, &expr.op, &child_schemas, &child_rows);
                self.groups.push(Group {
                    exprs: Vec::new(),
                    organic: Vec::new(),
                    created_by: Vec::new(),
                    schema,
                    est_rows: est,
                });
                GroupId((self.groups.len() - 1) as u32)
            }
        };
        self.dedup.insert(expr.clone(), gid);
        let group = &mut self.groups[gid.0 as usize];
        group.exprs.push(expr);
        group.organic.push(organic);
        group.created_by.push(creator);
        Ok((gid, true))
    }
}

impl Default for Memo {
    fn default() -> Self {
        Self::new()
    }
}

/// Schema compatibility for group membership: same *set* of column ids and
/// types. Order is excluded because commutativity rules legitimately permute
/// it (executors resolve columns by id, and the optimizer pins the root
/// output order with a projection). Nullability may *narrow* through
/// transformations (e.g. an outer join simplified to an inner join), so it
/// is excluded too.
fn same_shape(a: &Schema, b: &Schema) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter()
        .all(|x| b.iter().any(|y| x.id == y.id && x.data_type == y.data_type))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::newtree_from_logical;
    use ruletest_expr::Expr;
    use ruletest_logical::{IdGen, JoinKind, LogicalTree};
    use ruletest_storage::{tpch_database, TpchConfig};

    fn db() -> Database {
        tpch_database(&TpchConfig::default()).unwrap()
    }

    fn join_tree(db: &Database, ids: &mut IdGen) -> LogicalTree {
        let l = LogicalTree::get(db.catalog.table_by_name("region").unwrap(), ids);
        let r = LogicalTree::get(db.catalog.table_by_name("nation").unwrap(), ids);
        let pred = Expr::eq(Expr::col(l.output_col(0)), Expr::col(r.output_col(2)));
        LogicalTree::join(JoinKind::Inner, l, r, pred)
    }

    #[test]
    fn inserting_a_tree_creates_one_group_per_operator() {
        let db = db();
        let mut memo = Memo::new();
        let mut ids = IdGen::new();
        let tree = join_tree(&db, &mut ids);
        let nt = newtree_from_logical(&tree);
        let (root, fresh) = memo.insert(&db, &nt, None, true).unwrap();
        assert!(fresh);
        assert_eq!(memo.num_groups(), 3);
        assert_eq!(memo.num_exprs(), 3);
        assert_eq!(memo.schema(root).len(), 5);
        assert!(memo.est_rows(root) > 0.0);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let db = db();
        let mut memo = Memo::new();
        let mut ids = IdGen::new();
        let tree = join_tree(&db, &mut ids);
        let nt = newtree_from_logical(&tree);
        let (g1, _) = memo.insert(&db, &nt, None, true).unwrap();
        let (g2, fresh) = memo.insert(&db, &nt, None, true).unwrap();
        assert_eq!(g1, g2);
        assert!(!fresh);
        assert_eq!(memo.num_exprs(), 3);
    }

    #[test]
    fn substitute_into_target_group_shares_schema() {
        let db = db();
        let mut memo = Memo::new();
        let mut ids = IdGen::new();
        let tree = join_tree(&db, &mut ids);
        let (root, _) = memo
            .insert(&db, &newtree_from_logical(&tree), None, true)
            .unwrap();
        // Commuted join: same predicate, swapped children -> same schema set
        // but different column order... so build the *same* join again (dup)
        // plus a select-true wrapper targeted at the root group: schema is
        // identical, so it must be accepted.
        let sel = NewTree::new(
            Operator::Select {
                predicate: Expr::true_lit(),
            },
            vec![NewChild::Group(root)],
        );
        let (g, fresh) = memo.insert(&db, &sel, Some(root), false).unwrap();
        assert_eq!(g, root);
        assert!(fresh);
        assert_eq!(memo.group(root).exprs.len(), 2);
    }

    #[test]
    fn mismatched_substitute_schema_is_rejected() {
        let db = db();
        let mut memo = Memo::new();
        let mut ids = IdGen::new();
        let tree = join_tree(&db, &mut ids);
        let (root, _) = memo
            .insert(&db, &newtree_from_logical(&tree), None, true)
            .unwrap();
        let other = LogicalTree::get(db.catalog.table_by_name("part").unwrap(), &mut ids);
        let bad = newtree_from_logical(&other);
        assert!(memo.insert(&db, &bad, Some(root), true).is_err());
    }

    #[test]
    fn dangling_group_reference_is_internal_error() {
        let db = db();
        let mut memo = Memo::new();
        let nt = NewTree::new(Operator::Distinct, vec![NewChild::Group(GroupId(42))]);
        assert!(matches!(
            memo.insert(&db, &nt, None, true),
            Err(Error::Internal(_))
        ));
    }
}
