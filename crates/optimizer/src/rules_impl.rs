//! Implementation (physical transformation) rules — §2.1: rules that
//! "transform logical operator trees into hybrid logical/physical trees",
//! here producing physical alternatives for the cost-based extraction.

use crate::cost::split_equi_conjuncts;
use crate::pattern::PatternTree;
use crate::physical::PhysOp;
use crate::rule::{Bound, PhysCandidate, Rule, RuleCtx};
use ruletest_expr::{conjoin, conjuncts, try_col_eq_col, BinOp, Expr};
use ruletest_logical::{JoinKind, OpKind, Operator};

fn any() -> PatternTree {
    PatternTree::Any
}

fn get_to_seq_scan(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Get { table, cols } = &b.op else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::SeqScan {
            table: *table,
            cols: cols.clone(),
        },
        children: vec![],
    }]
}

/// `Select(Get)` with a `pk = literal` conjunct becomes a point lookup with
/// the remaining conjuncts as a residual filter.
fn select_get_to_index_seek(ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(get) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Get { table, cols } = &get.op else {
        return vec![];
    };
    let Ok(def) = ctx.db.catalog.table(*table) else {
        return vec![];
    };
    if def.primary_key.len() != 1 {
        return vec![];
    }
    let pk_col = cols[def.primary_key[0]];
    let mut key = None;
    let mut residual = Vec::new();
    for c in conjuncts(predicate) {
        if key.is_none() {
            if let Expr::Bin {
                op: BinOp::Eq,
                left,
                right,
            } = &c
            {
                match (left.as_ref(), right.as_ref()) {
                    (Expr::Col(cc), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(cc))
                        if *cc == pk_col && !v.is_null() =>
                    {
                        key = Some(v.clone());
                        continue;
                    }
                    _ => {}
                }
            }
        }
        residual.push(c);
    }
    let Some(key) = key else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::IndexSeek {
            table: *table,
            cols: cols.clone(),
            key,
            residual: conjoin(residual),
        },
        children: vec![],
    }]
}

fn select_to_filter(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::Filter {
            predicate: predicate.clone(),
        },
        children: vec![b.children[0].group()],
    }]
}

fn project_to_compute(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Project { outputs } = &b.op else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::Compute {
            outputs: outputs.clone(),
        },
        children: vec![b.children[0].group()],
    }]
}

/// Nested loops handles every join kind and arbitrary predicates — the
/// always-available fallback that keeps any mask implementable.
fn join_to_nl(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Join { kind, predicate } = &b.op else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::NLJoin {
            kind: *kind,
            predicate: predicate.clone(),
        },
        children: vec![b.children[0].group(), b.children[1].group()],
    }]
}

/// Hash join requires at least one cross-side equi conjunct.
fn join_to_hash(ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Join { kind, predicate } = &b.op else {
        return vec![];
    };
    let left = ctx.schema(b.children[0].group());
    let right = ctx.schema(b.children[1].group());
    let (keys, rest) = split_equi_conjuncts(predicate, left, right);
    if keys.is_empty() {
        return vec![];
    }
    vec![PhysCandidate {
        op: PhysOp::HashJoin {
            kind: *kind,
            left_keys: keys.iter().map(|(l, _)| *l).collect(),
            right_keys: keys.iter().map(|(_, r)| *r).collect(),
            residual: conjoin(rest),
        },
        children: vec![b.children[0].group(), b.children[1].group()],
    }]
}

/// Merge join: inner joins with at least one equi conjunct; merges on the
/// first key, everything else becomes the residual.
fn inner_join_to_merge(ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Join { kind, predicate } = &b.op else {
        return vec![];
    };
    if *kind != JoinKind::Inner {
        return vec![];
    }
    let left = ctx.schema(b.children[0].group());
    let right = ctx.schema(b.children[1].group());
    let (keys, rest) = split_equi_conjuncts(predicate, left, right);
    let Some(&(lk, rk)) = keys.first() else {
        return vec![];
    };
    let mut residual = rest;
    for &(l, r) in keys.iter().skip(1) {
        residual.push(Expr::eq(Expr::col(l), Expr::col(r)));
    }
    vec![PhysCandidate {
        op: PhysOp::MergeJoin {
            left_key: lk,
            right_key: rk,
            residual: conjoin(residual),
        },
        children: vec![b.children[0].group(), b.children[1].group()],
    }]
}

fn gbagg_to_hash(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::GbAgg { group_by, aggs } = &b.op else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::HashAgg {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        children: vec![b.children[0].group()],
    }]
}

fn gbagg_to_stream(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::GbAgg { group_by, aggs } = &b.op else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::StreamAgg {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        children: vec![b.children[0].group()],
    }]
}

fn union_to_concat(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::UnionAll {
        outputs,
        left_cols,
        right_cols,
    } = &b.op
    else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::Concat {
            outputs: outputs.clone(),
            left_cols: left_cols.clone(),
            right_cols: right_cols.clone(),
        },
        children: vec![b.children[0].group(), b.children[1].group()],
    }]
}

fn distinct_to_hash(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    if !matches!(b.op, Operator::Distinct) {
        return vec![];
    }
    vec![PhysCandidate {
        op: PhysOp::HashDistinct,
        children: vec![b.children[0].group()],
    }]
}

fn sort_to_sort(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Sort { keys } = &b.op else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::SortOp { keys: keys.clone() },
        children: vec![b.children[0].group()],
    }]
}

fn top_to_topn(_ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Top { n, keys } = &b.op else {
        return vec![];
    };
    vec![PhysCandidate {
        op: PhysOp::TopN {
            n: *n,
            keys: keys.clone(),
        },
        children: vec![b.children[0].group()],
    }]
}

/// Semi-join probe via hash when the predicate is a pure key equality —
/// modeled as a HashJoin with semi kind; kept as a distinct rule so rule
/// masks can separate the hash and NL semi strategies.
fn semi_to_hash_probe(ctx: &RuleCtx, b: &Bound) -> Vec<PhysCandidate> {
    let Operator::Join { kind, predicate } = &b.op else {
        return vec![];
    };
    if !matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti) {
        return vec![];
    }
    let left = ctx.schema(b.children[0].group());
    let right = ctx.schema(b.children[1].group());
    let (keys, rest) = split_equi_conjuncts(predicate, left, right);
    if keys.is_empty() || !rest.is_empty() {
        return vec![];
    }
    // Fully keyed: no residual. The general path is join_to_hash; this rule
    // exists to give the optimizer a choice distinguishable under masking.
    let _ = try_col_eq_col; // (imported for the equi-key helpers above)
    vec![PhysCandidate {
        op: PhysOp::HashJoin {
            kind: *kind,
            left_keys: keys.iter().map(|(l, _)| *l).collect(),
            right_keys: keys.iter().map(|(_, r)| *r).collect(),
            residual: Expr::true_lit(),
        },
        children: vec![b.children[0].group(), b.children[1].group()],
    }]
}

/// All implementation rules, in a stable order.
pub fn implementation_rules() -> Vec<Rule> {
    vec![
        Rule::implement(
            "GetToSeqScan",
            PatternTree::kind(OpKind::Get, vec![]),
            "always applicable",
            get_to_seq_scan,
        ),
        Rule::implement(
            "SelectGetToIndexSeek",
            PatternTree::kind(OpKind::Select, vec![PatternTree::kind(OpKind::Get, vec![])]),
            "a conjunct equates the single-column primary key with a literal",
            select_get_to_index_seek,
        ),
        Rule::implement(
            "SelectToFilter",
            PatternTree::kind(OpKind::Select, vec![any()]),
            "always applicable",
            select_to_filter,
        ),
        Rule::implement(
            "ProjectToCompute",
            PatternTree::kind(OpKind::Project, vec![any()]),
            "always applicable",
            project_to_compute,
        ),
        Rule::implement(
            "JoinToNestedLoops",
            PatternTree::kind(OpKind::Join, vec![any(), any()]),
            "always applicable (the fallback implementation)",
            join_to_nl,
        ),
        Rule::implement(
            "JoinToHashJoin",
            PatternTree::kind(OpKind::Join, vec![any(), any()]),
            "at least one cross-side equi conjunct",
            join_to_hash,
        ),
        Rule::implement(
            "InnerJoinToMergeJoin",
            PatternTree::join(vec![JoinKind::Inner], any(), any()),
            "inner join with at least one cross-side equi conjunct",
            inner_join_to_merge,
        ),
        Rule::implement(
            "SemiJoinToHashProbe",
            PatternTree::join(vec![JoinKind::LeftSemi, JoinKind::LeftAnti], any(), any()),
            "pure equi-key semi/anti join",
            semi_to_hash_probe,
        ),
        Rule::implement(
            "GbAggToHashAgg",
            PatternTree::kind(OpKind::GbAgg, vec![any()]),
            "always applicable",
            gbagg_to_hash,
        ),
        Rule::implement(
            "GbAggToStreamAgg",
            PatternTree::kind(OpKind::GbAgg, vec![any()]),
            "always applicable (sorts its input internally)",
            gbagg_to_stream,
        ),
        Rule::implement(
            "UnionAllToConcat",
            PatternTree::kind(OpKind::UnionAll, vec![any(), any()]),
            "always applicable",
            union_to_concat,
        ),
        Rule::implement(
            "DistinctToHashDistinct",
            PatternTree::kind(OpKind::Distinct, vec![any()]),
            "always applicable",
            distinct_to_hash,
        ),
        Rule::implement(
            "SortToSort",
            PatternTree::kind(OpKind::Sort, vec![any()]),
            "always applicable",
            sort_to_sort,
        ),
        Rule::implement(
            "TopToTopN",
            PatternTree::kind(OpKind::Top, vec![any()]),
            "always applicable",
            top_to_topn,
        ),
    ]
}
