//! Disk-backed, content-addressed persistence for the invocation cache.
//!
//! A testing campaign's cost model is optimizer invocations (§5.3.1), and
//! the in-memory [`OptCache`](crate::OptCache) already dedupes repeats
//! within one process. This module extends that saving across process
//! boundaries: computed `(tree, mask, budgets)` entries are written to a
//! versioned JSONL snapshot, and a later run with `--cache-dir` answers
//! those probes from disk without re-computing.
//!
//! Three properties shape the design:
//!
//! * **Content addressing.** Entries are keyed by the *exact* serialized
//!   [`CacheKey`] (canonical compact JSON, sorted object keys), never by a
//!   lossy fingerprint, so a collision can't serve a wrong plan. The
//!   snapshot as a whole is guarded by a campaign fingerprint (catalog
//!   hash, rule-catalog hash, seed, scale): if the rule catalog changed,
//!   the whole snapshot is rejected rather than risking poisoned entries.
//! * **Determinism.** Serialized floats round-trip bit-exactly (hex
//!   `f64::to_bits`), entries are written sorted by key, and each entry
//!   carries the [`ProfileSample`] its original compute produced so a
//!   warm hit can replay the exact telemetry of a cold compute. Hashes
//!   use FNV-1a (self-contained, stable across processes and releases) —
//!   `DefaultHasher` is documented as unstable and never touches disk.
//! * **Atomicity.** Every file is written to a temp sibling and renamed
//!   into place, so a `kill -9` mid-save leaves the previous snapshot
//!   intact. Shards serialize independently and load lazily on first
//!   probe.

use crate::cache::CacheKey;
use crate::optimizer::OptimizeResult;
use crate::physical::{PhysOp, PhysicalPlan};
use crate::rule::Rule;
use ruletest_common::{ColId, DataType, RuleId, TableId, Value};
use ruletest_expr::{AggCall, AggFunc, BinOp, Expr};
use ruletest_logical::{ColumnInfo, JoinKind, LogicalTree, Operator, Schema, SortKey};
use ruletest_storage::Catalog;
use ruletest_telemetry::{Json, ProfileSample};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Snapshot layout version; bump on breaking serialization changes. A
/// version mismatch rejects the snapshot the same way a fingerprint
/// mismatch does.
pub const FORMAT_VERSION: u64 = 1;

/// Fixed number of on-disk shard files. Independent of the in-memory
/// cache's shard count so either can change without invalidating
/// snapshots.
pub const DISK_SHARDS: usize = 16;

// ---------------------------------------------------------------------
// Stable hashing (FNV-1a 64).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher. Stable across processes, platforms,
/// and toolchain releases — unlike `DefaultHasher`, which is free to
/// change and is seeded per process.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn write_str(&mut self, s: &str) -> &mut Self {
        // Length prefix keeps concatenated fields unambiguous.
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv1a_str(s: &str) -> u64 {
    Fnv64::new().write(s.as_bytes()).finish()
}

/// The campaign fingerprint guarding a snapshot: schema catalog, rule
/// catalog (names, kinds, preconditions, in id order), database seed and
/// scale, and the snapshot format version. Budgets and masks are *not*
/// included — they are per-entry key components.
pub fn campaign_fingerprint<'a>(
    catalog: &Catalog,
    rules: impl Iterator<Item = &'a Rule>,
    db_seed: u64,
    scale: u64,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(FORMAT_VERSION);
    for def in catalog.tables() {
        h.write_u64(u64::from(def.id.0)).write_str(&def.name);
        for col in &def.columns {
            h.write_str(&col.name)
                .write_str(data_type_name(col.data_type))
                .write_u64(u64::from(col.nullable));
        }
        for &pk in &def.primary_key {
            h.write_u64(pk as u64);
        }
    }
    for (i, rule) in rules.enumerate() {
        h.write_u64(i as u64)
            .write_str(rule.name)
            .write_u64(matches!(rule.kind, crate::rule::RuleKind::Exploration) as u64)
            .write_str(rule.precondition);
    }
    h.write_u64(db_seed).write_u64(scale);
    h.finish()
}

// ---------------------------------------------------------------------
// JSON serializers. Canonical: `Json::Obj` is a BTreeMap, so
// `to_string_compact` yields sorted keys and a stable byte form.

fn err(what: &str) -> String {
    format!("cache snapshot: malformed {what}")
}

fn u64_field(j: &Json, field: &str) -> Result<u64, String> {
    j.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(field))
}

fn str_field<'a>(j: &'a Json, field: &str) -> Result<&'a str, String> {
    j.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| err(field))
}

fn arr_field<'a>(j: &'a Json, field: &str) -> Result<&'a [Json], String> {
    j.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| err(field))
}

/// `f64` as the hex of its bit pattern: `Json` numbers are `f64` but
/// integers are only exact to 2^53, and a round-trip through decimal
/// could perturb the bits — costs must compare bit-identical warm vs
/// cold.
fn f64_to_json(f: f64) -> Json {
    Json::str(format!("{:016x}", f.to_bits()))
}

fn f64_from_json(j: &Json, field: &str) -> Result<f64, String> {
    let s = str_field(j, field)?;
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| err(field))
}

fn col_list(cols: &[ColId]) -> Json {
    Json::Arr(cols.iter().map(|c| Json::count(u64::from(c.0))).collect())
}

fn cols_from(j: &Json, field: &str) -> Result<Vec<ColId>, String> {
    arr_field(j, field)?
        .iter()
        .map(|c| {
            c.as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .map(ColId)
                .ok_or_else(|| err(field))
        })
        .collect()
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        // i64 exceeds 2^53: decimal string keeps it exact.
        Value::Int(i) => Json::obj(vec![("int", Json::str(i.to_string()))]),
        Value::Str(s) => Json::obj(vec![("str", Json::str(s.clone()))]),
    }
}

fn value_from_json(j: &Json) -> Result<Value, String> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        _ => {
            if let Some(s) = j.get("int").and_then(Json::as_str) {
                s.parse().map(Value::Int).map_err(|_| err("int value"))
            } else if let Some(s) = j.get("str").and_then(Json::as_str) {
                Ok(Value::Str(s.to_string()))
            } else {
                Err(err("value"))
            }
        }
    }
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::And => "and",
        BinOp::Or => "or",
    }
}

fn binop_from(name: &str) -> Result<BinOp, String> {
    Ok(match name {
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "lt" => BinOp::Lt,
        "le" => BinOp::Le,
        "gt" => BinOp::Gt,
        "ge" => BinOp::Ge,
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        _ => return Err(err("binary operator")),
    })
}

fn expr_to_json(e: &Expr) -> Json {
    match e {
        Expr::Col(c) => Json::obj(vec![("col", Json::count(u64::from(c.0)))]),
        Expr::Lit(v) => Json::obj(vec![("lit", value_to_json(v))]),
        Expr::Bin { op, left, right } => Json::obj(vec![
            ("bin", Json::str(binop_name(*op))),
            ("l", expr_to_json(left)),
            ("r", expr_to_json(right)),
        ]),
        Expr::Not(x) => Json::obj(vec![("not", expr_to_json(x))]),
        Expr::IsNull(x) => Json::obj(vec![("is_null", expr_to_json(x))]),
    }
}

fn expr_from_json(j: &Json) -> Result<Expr, String> {
    if let Some(c) = j.get("col") {
        let id = c
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| err("column reference"))?;
        Ok(Expr::Col(ColId(id)))
    } else if let Some(v) = j.get("lit") {
        Ok(Expr::Lit(value_from_json(v)?))
    } else if let Some(op) = j.get("bin").and_then(Json::as_str) {
        Ok(Expr::bin(
            binop_from(op)?,
            expr_from_json(j.get("l").ok_or_else(|| err("bin.l"))?)?,
            expr_from_json(j.get("r").ok_or_else(|| err("bin.r"))?)?,
        ))
    } else if let Some(x) = j.get("not") {
        Ok(Expr::not(expr_from_json(x)?))
    } else if let Some(x) = j.get("is_null") {
        Ok(Expr::is_null(expr_from_json(x)?))
    } else {
        Err(err("expression"))
    }
}

fn sort_keys_to_json(keys: &[SortKey]) -> Json {
    Json::Arr(
        keys.iter()
            .map(|k| {
                Json::obj(vec![
                    ("col", Json::count(u64::from(k.col.0))),
                    ("desc", Json::Bool(k.descending)),
                ])
            })
            .collect(),
    )
}

fn sort_keys_from(j: &Json, field: &str) -> Result<Vec<SortKey>, String> {
    arr_field(j, field)?
        .iter()
        .map(|k| {
            let col = u64_field(k, "col")
                .and_then(|v| u32::try_from(v).map_err(|_| err("sort column")))?;
            let descending = k
                .get("desc")
                .and_then(Json::as_bool)
                .ok_or_else(|| err("sort direction"))?;
            Ok(SortKey {
                col: ColId(col),
                descending,
            })
        })
        .collect()
}

fn agg_func_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::CountStar => "count_star",
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    }
}

fn agg_func_from(name: &str) -> Result<AggFunc, String> {
    Ok(match name {
        "count_star" => AggFunc::CountStar,
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        _ => return Err(err("aggregate function")),
    })
}

fn aggs_to_json(aggs: &[AggCall]) -> Json {
    Json::Arr(
        aggs.iter()
            .map(|a| {
                Json::obj(vec![
                    ("func", Json::str(agg_func_name(a.func))),
                    (
                        "arg",
                        a.arg.map_or(Json::Null, |c| Json::count(u64::from(c.0))),
                    ),
                    ("out", Json::count(u64::from(a.output.0))),
                ])
            })
            .collect(),
    )
}

fn aggs_from(j: &Json, field: &str) -> Result<Vec<AggCall>, String> {
    arr_field(j, field)?
        .iter()
        .map(|a| {
            let func = agg_func_from(str_field(a, "func")?)?;
            let arg = match a.get("arg") {
                None | Some(Json::Null) => None,
                Some(v) => Some(ColId(
                    v.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| err("aggregate argument"))?,
                )),
            };
            let output = ColId(
                u64_field(a, "out")
                    .and_then(|v| u32::try_from(v).map_err(|_| err("aggregate output")))?,
            );
            Ok(AggCall { func, arg, output })
        })
        .collect()
}

fn join_kind_name(k: JoinKind) -> &'static str {
    match k {
        JoinKind::Inner => "inner",
        JoinKind::LeftOuter => "left_outer",
        JoinKind::RightOuter => "right_outer",
        JoinKind::FullOuter => "full_outer",
        JoinKind::LeftSemi => "left_semi",
        JoinKind::LeftAnti => "left_anti",
    }
}

fn join_kind_from(name: &str) -> Result<JoinKind, String> {
    Ok(match name {
        "inner" => JoinKind::Inner,
        "left_outer" => JoinKind::LeftOuter,
        "right_outer" => JoinKind::RightOuter,
        "full_outer" => JoinKind::FullOuter,
        "left_semi" => JoinKind::LeftSemi,
        "left_anti" => JoinKind::LeftAnti,
        _ => return Err(err("join kind")),
    })
}

fn operator_to_json(op: &Operator) -> Json {
    match op {
        Operator::Get { table, cols } => Json::obj(vec![
            ("op", Json::str("get")),
            ("table", Json::count(u64::from(table.0))),
            ("cols", col_list(cols)),
        ]),
        Operator::Select { predicate } => Json::obj(vec![
            ("op", Json::str("select")),
            ("pred", expr_to_json(predicate)),
        ]),
        Operator::Project { outputs } => Json::obj(vec![
            ("op", Json::str("project")),
            (
                "outputs",
                Json::Arr(
                    outputs
                        .iter()
                        .map(|(c, e)| {
                            Json::obj(vec![
                                ("col", Json::count(u64::from(c.0))),
                                ("expr", expr_to_json(e)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Operator::Join { kind, predicate } => Json::obj(vec![
            ("op", Json::str("join")),
            ("kind", Json::str(join_kind_name(*kind))),
            ("pred", expr_to_json(predicate)),
        ]),
        Operator::GbAgg { group_by, aggs } => Json::obj(vec![
            ("op", Json::str("gbagg")),
            ("group_by", col_list(group_by)),
            ("aggs", aggs_to_json(aggs)),
        ]),
        Operator::UnionAll {
            outputs,
            left_cols,
            right_cols,
        } => Json::obj(vec![
            ("op", Json::str("union_all")),
            ("outputs", col_list(outputs)),
            ("left_cols", col_list(left_cols)),
            ("right_cols", col_list(right_cols)),
        ]),
        Operator::Distinct => Json::obj(vec![("op", Json::str("distinct"))]),
        Operator::Sort { keys } => Json::obj(vec![
            ("op", Json::str("sort")),
            ("keys", sort_keys_to_json(keys)),
        ]),
        Operator::Top { n, keys } => Json::obj(vec![
            ("op", Json::str("top")),
            ("n", Json::count(*n)),
            ("keys", sort_keys_to_json(keys)),
        ]),
    }
}

fn operator_from_json(j: &Json) -> Result<Operator, String> {
    let projections = |field: &str| -> Result<Vec<(ColId, Expr)>, String> {
        arr_field(j, field)?
            .iter()
            .map(|o| {
                let col = u64_field(o, "col")
                    .and_then(|v| u32::try_from(v).map_err(|_| err("projection column")))?;
                let expr = expr_from_json(o.get("expr").ok_or_else(|| err("projection expr"))?)?;
                Ok((ColId(col), expr))
            })
            .collect()
    };
    Ok(match str_field(j, "op")? {
        "get" => Operator::Get {
            table: TableId(
                u64_field(j, "table")
                    .and_then(|v| u32::try_from(v).map_err(|_| err("table id")))?,
            ),
            cols: cols_from(j, "cols")?,
        },
        "select" => Operator::Select {
            predicate: expr_from_json(j.get("pred").ok_or_else(|| err("select predicate"))?)?,
        },
        "project" => Operator::Project {
            outputs: projections("outputs")?,
        },
        "join" => Operator::Join {
            kind: join_kind_from(str_field(j, "kind")?)?,
            predicate: expr_from_json(j.get("pred").ok_or_else(|| err("join predicate"))?)?,
        },
        "gbagg" => Operator::GbAgg {
            group_by: cols_from(j, "group_by")?,
            aggs: aggs_from(j, "aggs")?,
        },
        "union_all" => Operator::UnionAll {
            outputs: cols_from(j, "outputs")?,
            left_cols: cols_from(j, "left_cols")?,
            right_cols: cols_from(j, "right_cols")?,
        },
        "distinct" => Operator::Distinct,
        "sort" => Operator::Sort {
            keys: sort_keys_from(j, "keys")?,
        },
        "top" => Operator::Top {
            n: u64_field(j, "n")?,
            keys: sort_keys_from(j, "keys")?,
        },
        _ => return Err(err("operator tag")),
    })
}

/// Serializes a logical tree exactly — column ids and all. SQL text is
/// deliberately *not* used as the wire form: re-parsing renumbers column
/// ids, and a key that round-trips inexactly would never match again.
pub fn tree_to_json(tree: &LogicalTree) -> Json {
    Json::obj(vec![
        ("o", operator_to_json(&tree.op)),
        (
            "c",
            Json::Arr(tree.children.iter().map(tree_to_json).collect()),
        ),
    ])
}

pub fn tree_from_json(j: &Json) -> Result<LogicalTree, String> {
    let op = operator_from_json(j.get("o").ok_or_else(|| err("tree operator"))?)?;
    let children = arr_field(j, "c")?
        .iter()
        .map(tree_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(LogicalTree { op, children })
}

fn data_type_name(t: DataType) -> &'static str {
    match t {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Str => "str",
    }
}

fn data_type_from(name: &str) -> Result<DataType, String> {
    Ok(match name {
        "bool" => DataType::Bool,
        "int" => DataType::Int,
        "str" => DataType::Str,
        _ => return Err(err("data type")),
    })
}

fn schema_to_json(schema: &Schema) -> Json {
    Json::Arr(
        schema
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("id", Json::count(u64::from(c.id.0))),
                    ("type", Json::str(data_type_name(c.data_type))),
                    ("nullable", Json::Bool(c.nullable)),
                ])
            })
            .collect(),
    )
}

fn schema_from(j: &Json, field: &str) -> Result<Schema, String> {
    arr_field(j, field)?
        .iter()
        .map(|c| {
            Ok(ColumnInfo {
                id: ColId(
                    u64_field(c, "id")
                        .and_then(|v| u32::try_from(v).map_err(|_| err("schema column id")))?,
                ),
                data_type: data_type_from(str_field(c, "type")?)?,
                nullable: c
                    .get("nullable")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| err("schema nullability"))?,
            })
        })
        .collect()
}

fn phys_op_to_json(op: &PhysOp) -> Json {
    match op {
        PhysOp::SeqScan { table, cols } => Json::obj(vec![
            ("op", Json::str("seq_scan")),
            ("table", Json::count(u64::from(table.0))),
            ("cols", col_list(cols)),
        ]),
        PhysOp::IndexSeek {
            table,
            cols,
            key,
            residual,
        } => Json::obj(vec![
            ("op", Json::str("index_seek")),
            ("table", Json::count(u64::from(table.0))),
            ("cols", col_list(cols)),
            ("key", value_to_json(key)),
            ("residual", expr_to_json(residual)),
        ]),
        PhysOp::Filter { predicate } => Json::obj(vec![
            ("op", Json::str("filter")),
            ("pred", expr_to_json(predicate)),
        ]),
        PhysOp::Compute { outputs } => Json::obj(vec![
            ("op", Json::str("compute")),
            (
                "outputs",
                Json::Arr(
                    outputs
                        .iter()
                        .map(|(c, e)| {
                            Json::obj(vec![
                                ("col", Json::count(u64::from(c.0))),
                                ("expr", expr_to_json(e)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        PhysOp::NLJoin { kind, predicate } => Json::obj(vec![
            ("op", Json::str("nl_join")),
            ("kind", Json::str(join_kind_name(*kind))),
            ("pred", expr_to_json(predicate)),
        ]),
        PhysOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => Json::obj(vec![
            ("op", Json::str("hash_join")),
            ("kind", Json::str(join_kind_name(*kind))),
            ("left_keys", col_list(left_keys)),
            ("right_keys", col_list(right_keys)),
            ("residual", expr_to_json(residual)),
        ]),
        PhysOp::MergeJoin {
            left_key,
            right_key,
            residual,
        } => Json::obj(vec![
            ("op", Json::str("merge_join")),
            ("left_key", Json::count(u64::from(left_key.0))),
            ("right_key", Json::count(u64::from(right_key.0))),
            ("residual", expr_to_json(residual)),
        ]),
        PhysOp::HashAgg { group_by, aggs } => Json::obj(vec![
            ("op", Json::str("hash_agg")),
            ("group_by", col_list(group_by)),
            ("aggs", aggs_to_json(aggs)),
        ]),
        PhysOp::StreamAgg { group_by, aggs } => Json::obj(vec![
            ("op", Json::str("stream_agg")),
            ("group_by", col_list(group_by)),
            ("aggs", aggs_to_json(aggs)),
        ]),
        PhysOp::Concat {
            outputs,
            left_cols,
            right_cols,
        } => Json::obj(vec![
            ("op", Json::str("concat")),
            ("outputs", col_list(outputs)),
            ("left_cols", col_list(left_cols)),
            ("right_cols", col_list(right_cols)),
        ]),
        PhysOp::HashDistinct => Json::obj(vec![("op", Json::str("hash_distinct"))]),
        PhysOp::SortOp { keys } => Json::obj(vec![
            ("op", Json::str("sort")),
            ("keys", sort_keys_to_json(keys)),
        ]),
        PhysOp::TopN { n, keys } => Json::obj(vec![
            ("op", Json::str("top_n")),
            ("n", Json::count(*n)),
            ("keys", sort_keys_to_json(keys)),
        ]),
    }
}

fn phys_op_from_json(j: &Json) -> Result<PhysOp, String> {
    let table = || -> Result<TableId, String> {
        u64_field(j, "table")
            .and_then(|v| u32::try_from(v).map_err(|_| err("table id")))
            .map(TableId)
    };
    let col_of = |field: &str| -> Result<ColId, String> {
        u64_field(j, field)
            .and_then(|v| u32::try_from(v).map_err(|_| err("column id")))
            .map(ColId)
    };
    let expr_of = |field: &str| -> Result<Expr, String> {
        expr_from_json(j.get(field).ok_or_else(|| err(field))?)
    };
    Ok(match str_field(j, "op")? {
        "seq_scan" => PhysOp::SeqScan {
            table: table()?,
            cols: cols_from(j, "cols")?,
        },
        "index_seek" => PhysOp::IndexSeek {
            table: table()?,
            cols: cols_from(j, "cols")?,
            key: value_from_json(j.get("key").ok_or_else(|| err("seek key"))?)?,
            residual: expr_of("residual")?,
        },
        "filter" => PhysOp::Filter {
            predicate: expr_of("pred")?,
        },
        "compute" => PhysOp::Compute {
            outputs: arr_field(j, "outputs")?
                .iter()
                .map(|o| {
                    let col = u64_field(o, "col")
                        .and_then(|v| u32::try_from(v).map_err(|_| err("compute column")))?;
                    let expr = expr_from_json(o.get("expr").ok_or_else(|| err("compute expr"))?)?;
                    Ok((ColId(col), expr))
                })
                .collect::<Result<Vec<_>, String>>()?,
        },
        "nl_join" => PhysOp::NLJoin {
            kind: join_kind_from(str_field(j, "kind")?)?,
            predicate: expr_of("pred")?,
        },
        "hash_join" => PhysOp::HashJoin {
            kind: join_kind_from(str_field(j, "kind")?)?,
            left_keys: cols_from(j, "left_keys")?,
            right_keys: cols_from(j, "right_keys")?,
            residual: expr_of("residual")?,
        },
        "merge_join" => PhysOp::MergeJoin {
            left_key: col_of("left_key")?,
            right_key: col_of("right_key")?,
            residual: expr_of("residual")?,
        },
        "hash_agg" => PhysOp::HashAgg {
            group_by: cols_from(j, "group_by")?,
            aggs: aggs_from(j, "aggs")?,
        },
        "stream_agg" => PhysOp::StreamAgg {
            group_by: cols_from(j, "group_by")?,
            aggs: aggs_from(j, "aggs")?,
        },
        "concat" => PhysOp::Concat {
            outputs: cols_from(j, "outputs")?,
            left_cols: cols_from(j, "left_cols")?,
            right_cols: cols_from(j, "right_cols")?,
        },
        "hash_distinct" => PhysOp::HashDistinct,
        "sort" => PhysOp::SortOp {
            keys: sort_keys_from(j, "keys")?,
        },
        "top_n" => PhysOp::TopN {
            n: u64_field(j, "n")?,
            keys: sort_keys_from(j, "keys")?,
        },
        _ => return Err(err("physical operator tag")),
    })
}

pub fn plan_to_json(plan: &PhysicalPlan) -> Json {
    Json::obj(vec![
        ("o", phys_op_to_json(&plan.op)),
        (
            "c",
            Json::Arr(plan.children.iter().map(plan_to_json).collect()),
        ),
        ("schema", schema_to_json(&plan.schema)),
        ("est_rows", f64_to_json(plan.est_rows)),
        ("est_cost", f64_to_json(plan.est_cost)),
    ])
}

pub fn plan_from_json(j: &Json) -> Result<PhysicalPlan, String> {
    Ok(PhysicalPlan {
        op: phys_op_from_json(j.get("o").ok_or_else(|| err("plan operator"))?)?,
        children: arr_field(j, "c")?
            .iter()
            .map(plan_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        schema: schema_from(j, "schema")?,
        est_rows: f64_from_json(j, "est_rows")?,
        est_cost: f64_from_json(j, "est_cost")?,
    })
}

fn rule_ids_to_json(ids: impl Iterator<Item = RuleId>) -> Json {
    Json::Arr(ids.map(|r| Json::count(u64::from(r.0))).collect())
}

fn rule_id_from(j: &Json) -> Result<RuleId, String> {
    j.as_u64()
        .and_then(|v| u16::try_from(v).ok())
        .map(RuleId)
        .ok_or_else(|| err("rule id"))
}

pub fn result_to_json(result: &OptimizeResult) -> Json {
    Json::obj(vec![
        ("plan", plan_to_json(&result.plan)),
        ("cost", f64_to_json(result.cost)),
        (
            "rule_set",
            rule_ids_to_json(result.rule_set.iter().copied()),
        ),
        (
            "rule_deps",
            Json::Arr(
                result
                    .rule_dependencies
                    .iter()
                    .map(|&(a, b)| {
                        Json::Arr(vec![
                            Json::count(u64::from(a.0)),
                            Json::count(u64::from(b.0)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("groups", Json::count(result.groups as u64)),
        ("exprs", Json::count(result.exprs as u64)),
        ("truncated", Json::Bool(result.truncated)),
    ])
}

pub fn result_from_json(j: &Json) -> Result<OptimizeResult, String> {
    let rule_set = arr_field(j, "rule_set")?
        .iter()
        .map(rule_id_from)
        .collect::<Result<_, _>>()?;
    let rule_dependencies = arr_field(j, "rule_deps")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| err("rule dependency"))?;
            Ok((rule_id_from(&pair[0])?, rule_id_from(&pair[1])?))
        })
        .collect::<Result<_, String>>()?;
    Ok(OptimizeResult {
        plan: plan_from_json(j.get("plan").ok_or_else(|| err("result plan"))?)?,
        cost: f64_from_json(j, "cost")?,
        rule_set,
        rule_dependencies,
        groups: u64_field(j, "groups")? as usize,
        exprs: u64_field(j, "exprs")? as usize,
        truncated: j
            .get("truncated")
            .and_then(Json::as_bool)
            .ok_or_else(|| err("truncated flag"))?,
    })
}

pub fn key_to_json(key: &CacheKey) -> Json {
    let mut fields = vec![
        ("tree", tree_to_json(key.tree())),
        ("disabled", rule_ids_to_json(key.disabled().iter().copied())),
        ("max_exprs", Json::count(key.max_exprs() as u64)),
        ("max_passes", Json::count(key.max_passes() as u64)),
    ];
    // Omitted when unset so default-config keys keep the exact canonical
    // bytes older snapshots were addressed by.
    if let Some(hard) = key.hard_max_exprs() {
        fields.push(("hard_max_exprs", Json::count(hard as u64)));
    }
    Json::obj(fields)
}

/// Canonical byte form of a cache key: compact JSON with sorted object
/// keys. Content-addresses the snapshot entries (no lossy hashing).
pub fn canonical_key(key: &CacheKey) -> String {
    key_to_json(key).to_string_compact()
}

// ---------------------------------------------------------------------
// The snapshot store.

/// Atomic write: temp sibling + rename. A crash mid-write leaves the old
/// file (or no file), never a torn one.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// A warm entry handed back by [`SnapshotStore::peek_warm`].
pub struct WarmHit {
    pub result: Arc<OptimizeResult>,
    /// The profile sample the original compute produced, replayed by the
    /// warm hit so cold and warm span trees match exactly.
    pub sample: Option<ProfileSample>,
    /// True when the entry's telemetry is already included in an absorbed
    /// checkpoint report (`--resume`): the warm hit must NOT re-record it.
    pub counted_in_base: bool,
}

/// Boundary stamp meaning "recorded outside any checkpointed campaign" —
/// such entries are never considered part of a resumed base report.
const NO_BOUNDARY: u64 = u64::MAX;

struct StoredEntry {
    result: Arc<OptimizeResult>,
    sample: Option<ProfileSample>,
    /// Checkpoint boundary whose report snapshot first covers this
    /// entry's telemetry (see [`SnapshotStore::set_boundary`]).
    boundary: u64,
}

type Shard = Mutex<Option<HashMap<String, StoredEntry>>>;

/// Disk-backed warm store for the invocation cache.
///
/// Layout under `<dir>/cache/`: `MANIFEST.json` (format version +
/// campaign fingerprint) and `shard-<i>.jsonl` files (one entry per
/// line, sorted by canonical key). Shards load lazily on the first probe
/// that maps to them; `save` writes every shard atomically.
pub struct SnapshotStore {
    dir: PathBuf,
    fingerprint: u64,
    /// A snapshot existed but its fingerprint (or format) didn't match —
    /// it is ignored wholesale and will be overwritten on save.
    rejected: bool,
    /// A matching snapshot exists on disk to load shards from.
    has_snapshot: bool,
    /// Resume mode: entries stamped with a boundary `<=` this value are
    /// already counted in the absorbed base report.
    counted_through: Option<u64>,
    /// Stamp applied to freshly recorded entries (the checkpoint boundary
    /// whose snapshot will cover them).
    boundary: AtomicU64,
    shards: Vec<Shard>,
}

impl SnapshotStore {
    /// Opens (or initializes) the store under `dir`. `counted_through`
    /// is resume mode: disk entries stamped with a checkpoint boundary
    /// `<=` the value are already counted in the absorbed base report and
    /// must not re-record on a warm hit. Never fails on a *stale*
    /// snapshot — that sets [`SnapshotStore::rejected`] and starts cold.
    pub fn open(
        dir: &Path,
        fingerprint: u64,
        counted_through: Option<u64>,
    ) -> std::io::Result<Self> {
        let dir = dir.join("cache");
        fs::create_dir_all(&dir)?;
        let manifest = dir.join("MANIFEST.json");
        let (rejected, has_snapshot) = match fs::read_to_string(&manifest) {
            Ok(text) => {
                let ok = Json::parse(&text).ok().is_some_and(|doc| {
                    doc.get("format").and_then(Json::as_u64) == Some(FORMAT_VERSION)
                        && doc.get("fingerprint").and_then(Json::as_str)
                            == Some(format!("{fingerprint:016x}").as_str())
                });
                (!ok, ok)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (false, false),
            Err(e) => return Err(e),
        };
        Ok(SnapshotStore {
            dir,
            fingerprint,
            rejected,
            has_snapshot,
            counted_through,
            boundary: AtomicU64::new(NO_BOUNDARY),
            shards: (0..DISK_SHARDS).map(|_| Mutex::new(None)).collect(),
        })
    }

    /// Sets the checkpoint boundary stamped onto subsequently recorded
    /// entries. A checkpointed campaign calls this when entering stage
    /// `b`, then snapshots its report after saving — so a later
    /// `--resume` from boundary `b` knows exactly which disk entries that
    /// snapshot already counted. Never called → entries are stamped as
    /// boundary-less and never treated as part of a resumed base.
    pub fn set_boundary(&self, b: u64) {
        self.boundary.store(b, Ordering::Relaxed);
    }

    /// True when a snapshot was found but discarded (stale fingerprint or
    /// format). Telemetry counts this as `cache.fingerprint_rejected`.
    pub fn rejected(&self) -> bool {
        self.rejected
    }

    fn shard_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("shard-{idx}.jsonl"))
    }

    fn load_shard(&self, idx: usize) -> HashMap<String, StoredEntry> {
        let mut map = HashMap::new();
        if !self.has_snapshot {
            return map;
        }
        // Chaos site: an injected cache-I/O fault degrades this shard to
        // a cold start — exactly the graceful path a real read error takes.
        if let Err(e) = ruletest_common::chaos::point("cache.load") {
            eprintln!("warning: cache shard {idx} load failed ({e}); starting cold");
            return map;
        }
        let text = match fs::read_to_string(self.shard_path(idx)) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return map,
            Err(e) => {
                eprintln!("warning: cache shard {idx} unreadable ({e}); starting cold");
                return map;
            }
        };
        let mut corrupted = 0usize;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            // A malformed line (truncated write from a pre-atomic-rename
            // era, disk corruption, manual edit) only loses that entry's
            // warmth; intact lines in the same shard stay usable.
            let Some((key_str, entry)) = parse_entry_line(line) else {
                corrupted += 1;
                continue;
            };
            map.insert(key_str, entry);
        }
        if corrupted > 0 {
            eprintln!(
                "warning: cache shard {idx}: skipped {corrupted} corrupted entr{} (kept {})",
                if corrupted == 1 { "y" } else { "ies" },
                map.len()
            );
        }
        map
    }

    fn locked_shard(&self, idx: usize) -> MutexGuard<'_, Option<HashMap<String, StoredEntry>>> {
        let mut guard = self.shards[idx].lock().expect("snapshot shard poisoned");
        if guard.is_none() {
            *guard = Some(self.load_shard(idx));
        }
        guard
    }

    fn shard_index(key_str: &str) -> usize {
        (fnv1a_str(key_str) % DISK_SHARDS as u64) as usize
    }

    /// Returns the warm entry for `key`, leaving it in the store. Peek
    /// (rather than take) semantics keep racing probes consistent: both
    /// see the same entry, and the in-memory cache's first-insertion-wins
    /// dedup decides who records telemetry.
    pub fn peek_warm(&self, key: &CacheKey) -> Option<WarmHit> {
        let key_str = canonical_key(key);
        let idx = Self::shard_index(&key_str);
        let guard = self.locked_shard(idx);
        let map = guard.as_ref().expect("shard loaded above");
        map.get(&key_str).map(|e| WarmHit {
            result: Arc::clone(&e.result),
            sample: e.sample.clone(),
            counted_in_base: self.counted_through.is_some_and(|ct| e.boundary <= ct),
        })
    }

    /// Registers a freshly computed result (with the sample its compute
    /// produced) for the next save. Idempotent: an existing entry for the
    /// key is kept (optimization is deterministic, values are identical).
    pub fn record_fresh(
        &self,
        key: &CacheKey,
        result: &Arc<OptimizeResult>,
        sample: Option<&ProfileSample>,
    ) {
        let key_str = canonical_key(key);
        let idx = Self::shard_index(&key_str);
        let mut guard = self.locked_shard(idx);
        let map = guard.as_mut().expect("shard loaded above");
        map.entry(key_str).or_insert_with(|| StoredEntry {
            result: Arc::clone(result),
            sample: sample.cloned(),
            boundary: self.boundary.load(Ordering::Relaxed),
        });
    }

    /// Writes the manifest and every shard (disk entries merged with
    /// fresh ones, sorted by key) via atomic renames. Returns the number
    /// of entries persisted.
    pub fn save(&self) -> std::io::Result<u64> {
        // Chaos site: an injected fault skips the save — the previous
        // snapshot stays intact (same guarantee a failed atomic rename
        // gives), the process just loses this round of warmth.
        if let Err(e) = ruletest_common::chaos::point("cache.save") {
            eprintln!("warning: cache snapshot save skipped ({e})");
            return Ok(0);
        }
        let mut persisted = 0u64;
        for idx in 0..DISK_SHARDS {
            let guard = self.locked_shard(idx);
            let map = guard.as_ref().expect("shard loaded above");
            let mut keys: Vec<&String> = map.keys().collect();
            keys.sort_unstable();
            let mut out = String::new();
            for key_str in keys {
                let e = &map[key_str];
                out.push_str(&entry_line(key_str, e));
                out.push('\n');
                persisted += 1;
            }
            write_atomic(&self.shard_path(idx), &out)?;
        }
        let manifest = Json::obj(vec![
            ("format", Json::count(FORMAT_VERSION)),
            (
                "fingerprint",
                Json::str(format!("{:016x}", self.fingerprint)),
            ),
        ]);
        write_atomic(
            &self.dir.join("MANIFEST.json"),
            &manifest.to_string_pretty(),
        )?;
        Ok(persisted)
    }

    /// Entries currently resident (loaded or fresh); loads nothing.
    pub fn resident_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("snapshot shard poisoned")
                    .as_ref()
                    .map_or(0, HashMap::len)
            })
            .sum()
    }
}

fn entry_line(key_str: &str, e: &StoredEntry) -> String {
    // The key is embedded as raw JSON (not re-quoted): parsing the line
    // and compact-printing the "key" field reproduces `key_str` exactly,
    // because compact printing with sorted keys is canonical.
    let sample = match &e.sample {
        Some(s) => s.to_json().to_string_compact(),
        None => "null".to_string(),
    };
    // The boundary stamp is omitted for boundary-less entries (u64::MAX
    // exceeds a Json number's exact integer range).
    let boundary = if e.boundary == NO_BOUNDARY {
        String::new()
    } else {
        format!(",\"b\":{}", e.boundary)
    };
    format!(
        "{{\"key\":{key_str},\"result\":{},\"sample\":{sample}{boundary}}}",
        result_to_json(&e.result).to_string_compact()
    )
}

fn parse_entry_line(line: &str) -> Option<(String, StoredEntry)> {
    let doc = Json::parse(line).ok()?;
    let key_str = doc.get("key")?.to_string_compact();
    let result = result_from_json(doc.get("result")?).ok()?;
    let sample = match doc.get("sample") {
        None | Some(Json::Null) => None,
        Some(s) => Some(ProfileSample::from_json(s).ok()?),
    };
    let boundary = doc.get("b").and_then(Json::as_u64).unwrap_or(NO_BOUNDARY);
    Some((
        key_str,
        StoredEntry {
            result: Arc::new(result),
            sample,
            boundary,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::RuleMask;
    use crate::optimizer::OptimizerConfig;
    use ruletest_common::Rng;
    use ruletest_expr::Expr;

    fn leaf(tag: u32) -> LogicalTree {
        LogicalTree::get_with_cols(TableId(tag), vec![ColId(tag), ColId(tag + 1)])
    }

    fn sample_tree() -> LogicalTree {
        let join = LogicalTree::join(
            JoinKind::LeftOuter,
            leaf(0),
            leaf(10),
            Expr::eq(Expr::col(ColId(0)), Expr::col(ColId(10))),
        );
        let select = LogicalTree::select(
            join,
            Expr::and(
                Expr::not(Expr::is_null(Expr::col(ColId(1)))),
                Expr::bin(
                    BinOp::Ge,
                    Expr::col(ColId(11)),
                    Expr::lit(Value::Int(-9_007_199_254_740_993)), // beyond 2^53
                ),
            ),
        );
        let agg = LogicalTree::gbagg(
            select,
            vec![ColId(0)],
            vec![
                AggCall::new(AggFunc::CountStar, None, ColId(20)),
                AggCall::new(AggFunc::Max, Some(ColId(11)), ColId(21)),
            ],
        );
        LogicalTree::top(
            agg,
            7,
            vec![SortKey::desc(ColId(20)), SortKey::asc(ColId(0))],
        )
    }

    #[test]
    fn tree_round_trips_exactly() {
        let tree = sample_tree();
        let back = tree_from_json(&tree_to_json(&tree)).unwrap();
        assert_eq!(back, tree);
        // Union + distinct + sort + project cover the remaining operators.
        let union = LogicalTree::union_all(
            leaf(0),
            leaf(10),
            vec![ColId(30), ColId(31)],
            vec![ColId(0), ColId(1)],
            vec![ColId(10), ColId(11)],
        );
        let proj = LogicalTree::project(
            LogicalTree::sort(LogicalTree::distinct(union), vec![SortKey::asc(ColId(30))]),
            vec![(ColId(40), Expr::col(ColId(30)))],
        );
        let back = tree_from_json(&tree_to_json(&proj)).unwrap();
        assert_eq!(back, proj);
    }

    #[test]
    fn canonical_key_is_stable_and_mask_canonical() {
        let tree = leaf(0);
        let a = CacheKey::new(
            &tree,
            &OptimizerConfig {
                mask: RuleMask::disabling(&[RuleId(5), RuleId(2)]),
                ..Default::default()
            },
        );
        let b = CacheKey::new(
            &tree,
            &OptimizerConfig {
                mask: RuleMask::disabling(&[RuleId(2), RuleId(5)]),
                ..Default::default()
            },
        );
        assert_eq!(canonical_key(&a), canonical_key(&b));
        // Round-tripping the canonical form through the parser reproduces
        // it byte-for-byte (the content-addressing invariant).
        let parsed = Json::parse(&canonical_key(&a)).unwrap();
        assert_eq!(parsed.to_string_compact(), canonical_key(&a));
    }

    #[test]
    fn f64_bits_survive_the_round_trip() {
        for f in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, 0.1 + 0.2] {
            let j = Json::obj(vec![("x", f64_to_json(f))]);
            let back = f64_from_json(&j, "x").unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn fnv_is_stable() {
        // Golden values: the hash must never change across releases, or
        // every snapshot in the field would be silently rejected.
        assert_eq!(fnv1a_str(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_str("a"), 0xaf63_dc4c_8601_ec8c);
    }

    fn dummy_result(cost: f64) -> Arc<OptimizeResult> {
        Arc::new(OptimizeResult {
            plan: PhysicalPlan {
                op: PhysOp::SeqScan {
                    table: TableId(0),
                    cols: vec![ColId(0), ColId(1)],
                },
                children: vec![],
                schema: vec![
                    ColumnInfo {
                        id: ColId(0),
                        data_type: DataType::Int,
                        nullable: false,
                    },
                    ColumnInfo {
                        id: ColId(1),
                        data_type: DataType::Str,
                        nullable: true,
                    },
                ],
                est_rows: 10.25,
                est_cost: cost,
            },
            cost,
            rule_set: [RuleId(1), RuleId(4)].into_iter().collect(),
            rule_dependencies: [(RuleId(1), RuleId(4))].into_iter().collect(),
            groups: 3,
            exprs: 9,
            truncated: false,
        })
    }

    #[test]
    fn result_round_trips() {
        let r = dummy_result(0.1 + 0.2);
        let back = result_from_json(&result_to_json(&r)).unwrap();
        assert_eq!(back.cost.to_bits(), r.cost.to_bits());
        assert_eq!(back.rule_set, r.rule_set);
        assert_eq!(back.rule_dependencies, r.rule_dependencies);
        assert_eq!((back.groups, back.exprs, back.truncated), (3, 9, false));
        assert_eq!(back.plan.schema, r.plan.schema);
        assert!(back.plan.same_shape(&r.plan));
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut rng = Rng::new(std::process::id() as u64);
        let dir = std::env::temp_dir().join(format!(
            "ruletest-persist-{tag}-{}-{}",
            std::process::id(),
            rng.next_u64()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_round_trips_and_warms() {
        let dir = temp_dir("roundtrip");
        let key = CacheKey::new(&sample_tree(), &OptimizerConfig::default());
        {
            let store = SnapshotStore::open(&dir, 42, None).unwrap();
            assert!(!store.rejected());
            assert!(store.peek_warm(&key).is_none(), "store starts cold");
            store.record_fresh(&key, &dummy_result(5.5), None);
            assert_eq!(store.save().unwrap(), 1);
        }
        let store = SnapshotStore::open(&dir, 42, None).unwrap();
        assert!(!store.rejected());
        let hit = store.peek_warm(&key).expect("warm hit after reopen");
        assert_eq!(hit.result.cost.to_bits(), 5.5f64.to_bits());
        assert!(!hit.counted_in_base);
        // Peek leaves the entry in place.
        assert!(store.peek_warm(&key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_rejects_the_snapshot() {
        let dir = temp_dir("reject");
        let key = CacheKey::new(&leaf(3), &OptimizerConfig::default());
        {
            let store = SnapshotStore::open(&dir, 1, None).unwrap();
            store.record_fresh(&key, &dummy_result(1.0), None);
            store.save().unwrap();
        }
        let store = SnapshotStore::open(&dir, 2, None).unwrap();
        assert!(store.rejected(), "stale fingerprint must be rejected");
        assert!(store.peek_warm(&key).is_none(), "no poisoned entries");
        // Saving under the new fingerprint replaces the stale snapshot.
        store.record_fresh(&key, &dummy_result(2.0), None);
        store.save().unwrap();
        let store = SnapshotStore::open(&dir, 2, None).unwrap();
        assert!(!store.rejected());
        assert!(store.peek_warm(&key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_mode_marks_disk_entries_counted() {
        let dir = temp_dir("resume");
        let key = CacheKey::new(&leaf(7), &OptimizerConfig::default());
        let key2 = CacheKey::new(&leaf(8), &OptimizerConfig::default());
        {
            let store = SnapshotStore::open(&dir, 9, None).unwrap();
            store.set_boundary(1);
            store.record_fresh(&key, &dummy_result(1.0), None);
            store.set_boundary(2);
            store.record_fresh(&key2, &dummy_result(2.0), None);
            store.save().unwrap();
        }
        // Resuming from the stage-1 checkpoint: the stage-1 entry is
        // already counted in the base report; the stage-2 entry is not.
        let store = SnapshotStore::open(&dir, 9, Some(1)).unwrap();
        assert!(store.peek_warm(&key).unwrap().counted_in_base);
        assert!(!store.peek_warm(&key2).unwrap().counted_in_base);
        // A cold open counts nothing as already reported.
        let cold = SnapshotStore::open(&dir, 9, None).unwrap();
        assert!(!cold.peek_warm(&key).unwrap().counted_in_base);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_shard_degrades_to_the_intact_entries() {
        let dir = temp_dir("truncate");
        let keys: Vec<CacheKey> = (0..8)
            .map(|i| CacheKey::new(&leaf(i), &OptimizerConfig::default()))
            .collect();
        {
            let store = SnapshotStore::open(&dir, 5, None).unwrap();
            for k in &keys {
                store.record_fresh(k, &dummy_result(3.0), None);
            }
            store.save().unwrap();
        }
        // Chop the tail off every non-empty shard, mid-record: the last
        // line becomes unparseable garbage, earlier lines stay intact.
        let mut chopped = 0usize;
        for i in 0..DISK_SHARDS {
            let path = dir.join("cache").join(format!("shard-{i}.jsonl"));
            let text = fs::read_to_string(&path).unwrap();
            if text.len() < 40 {
                continue;
            }
            fs::write(&path, &text[..text.len() - 30]).unwrap();
            chopped += 1;
        }
        assert!(chopped > 0, "no shard was large enough to truncate");
        // Reopen: no panic, no error — every entry on an intact line is
        // still warm, only the torn records lost their warmth.
        let store = SnapshotStore::open(&dir, 5, None).unwrap();
        assert!(!store.rejected());
        let warm = keys.iter().filter(|k| store.peek_warm(k).is_some()).count();
        assert!(warm < keys.len(), "truncation must cost some warmth");
        // A fresh save repairs the snapshot.
        for k in &keys {
            store.record_fresh(k, &dummy_result(3.0), None);
        }
        store.save().unwrap();
        let repaired = SnapshotStore::open(&dir, 5, None).unwrap();
        assert_eq!(
            keys.iter()
                .filter(|k| repaired.peek_warm(k).is_some())
                .count(),
            keys.len()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hard_cap_extends_the_canonical_key_without_perturbing_defaults() {
        let tree = leaf(2);
        let plain = canonical_key(&CacheKey::new(&tree, &OptimizerConfig::default()));
        assert!(
            !plain.contains("hard_max_exprs"),
            "default keys must keep their historical byte form: {plain}"
        );
        let capped = canonical_key(&CacheKey::new(
            &tree,
            &OptimizerConfig {
                hard_max_exprs: Some(500),
                ..Default::default()
            },
        ));
        assert!(capped.contains("\"hard_max_exprs\":500"), "{capped}");
        assert_ne!(plain, capped);
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let write = |dir: &Path| {
            let store = SnapshotStore::open(dir, 7, None).unwrap();
            // Insertion order differs between the two runs.
            let keys: Vec<CacheKey> = (0..20)
                .map(|i| CacheKey::new(&leaf(i), &OptimizerConfig::default()))
                .collect();
            for k in keys.iter() {
                store.record_fresh(k, &dummy_result(1.0), None);
            }
            store.save().unwrap();
        };
        let write_rev = |dir: &Path| {
            let store = SnapshotStore::open(dir, 7, None).unwrap();
            let keys: Vec<CacheKey> = (0..20)
                .map(|i| CacheKey::new(&leaf(i), &OptimizerConfig::default()))
                .collect();
            for k in keys.iter().rev() {
                store.record_fresh(k, &dummy_result(1.0), None);
            }
            store.save().unwrap();
        };
        let (a, b) = (temp_dir("det-a"), temp_dir("det-b"));
        write(&a);
        write_rev(&b);
        for i in 0..DISK_SHARDS {
            let fa = fs::read_to_string(a.join("cache").join(format!("shard-{i}.jsonl"))).unwrap();
            let fb = fs::read_to_string(b.join("cache").join(format!("shard-{i}.jsonl"))).unwrap();
            assert_eq!(fa, fb, "shard {i} bytes differ");
        }
        let _ = fs::remove_dir_all(&a);
        let _ = fs::remove_dir_all(&b);
    }
}
