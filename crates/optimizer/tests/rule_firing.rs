//! Per-rule firing tests: for every exploration rule, a minimal hand-built
//! tree that exercises it, and — for rules with preconditions beyond their
//! pattern — a near-miss tree that matches the pattern but must NOT fire.
//! These pin down each rule's necessary-vs-sufficient boundary (§3.1).

use ruletest_common::ColId;
use ruletest_expr::{AggCall, AggFunc, BinOp, Expr};
use ruletest_logical::{IdGen, JoinKind, LogicalTree, SortKey};
use ruletest_optimizer::Optimizer;
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;
use std::sync::OnceLock;

fn optimizer() -> &'static Optimizer {
    static OPT: OnceLock<Optimizer> = OnceLock::new();
    OPT.get_or_init(|| Optimizer::new(Arc::new(tpch_database(&TpchConfig::default()).unwrap())))
}

fn get(name: &str, ids: &mut IdGen) -> LogicalTree {
    let opt = optimizer();
    LogicalTree::get(opt.database().catalog.table_by_name(name).unwrap(), ids)
}

fn exercises(tree: &LogicalTree, rule: &str) -> bool {
    let opt = optimizer();
    let rid = opt
        .rule_id(rule)
        .unwrap_or_else(|| panic!("unknown rule {rule}"));
    let res = opt.optimize(tree).expect("optimization succeeds");
    res.rule_set.contains(&rid)
}

/// Like [`exercises`] but with other rules disabled — isolates a
/// precondition that commutativity or associativity would otherwise
/// legitimately satisfy through an equivalent expression.
fn exercises_masked(tree: &LogicalTree, rule: &str, disabled: &[&str]) -> bool {
    let opt = optimizer();
    let rid = opt
        .rule_id(rule)
        .unwrap_or_else(|| panic!("unknown rule {rule}"));
    let mask: Vec<_> = disabled
        .iter()
        .map(|n| opt.rule_id(n).unwrap_or_else(|| panic!("unknown rule {n}")))
        .collect();
    let res = opt
        .optimize_with(tree, &ruletest_optimizer::OptimizerConfig::disabling(&mask))
        .expect("optimization succeeds");
    res.rule_set.contains(&rid)
}

fn assert_fires(tree: &LogicalTree, rule: &str) {
    assert!(
        exercises(tree, rule),
        "{rule} did not fire on\n{}",
        tree.explain()
    );
}

fn assert_silent(tree: &LogicalTree, rule: &str) {
    assert!(
        !exercises(tree, rule),
        "{rule} fired unexpectedly on\n{}",
        tree.explain()
    );
}

fn eq(a: ColId, b: ColId) -> Expr {
    Expr::eq(Expr::col(a), Expr::col(b))
}

/// nation JOIN region ON n_regionkey = r_regionkey.
fn nation_region_join(ids: &mut IdGen, kind: JoinKind) -> (LogicalTree, ColId, ColId) {
    let n = get("nation", ids);
    let r = get("region", ids);
    let (nk, rk) = (n.output_col(2), r.output_col(0));
    (LogicalTree::join(kind, n, r, eq(nk, rk)), nk, rk)
}

/// UNION ALL of two region scans over both columns.
fn region_union(ids: &mut IdGen) -> (LogicalTree, Vec<ColId>) {
    let a = get("region", ids);
    let b = get("region", ids);
    let (a0, a1, b0, b1) = (
        a.output_col(0),
        a.output_col(1),
        b.output_col(0),
        b.output_col(1),
    );
    let outs = vec![ids.fresh(), ids.fresh()];
    (
        LogicalTree::union_all(a, b, outs.clone(), vec![a0, a1], vec![b0, b1]),
        outs,
    )
}

// ---------- join rules ----------

#[test]
fn join_commutes() {
    let mut ids = IdGen::new();
    let (j, _, _) = nation_region_join(&mut ids, JoinKind::Inner);
    assert_fires(&j, "InnerJoinCommute");
    let mut ids = IdGen::new();
    let (loj, _, _) = nation_region_join(&mut ids, JoinKind::LeftOuter);
    assert_fires(&loj, "LojCommute");
    assert_silent(&loj, "InnerJoinCommute");
    let mut ids = IdGen::new();
    let (roj, _, _) = nation_region_join(&mut ids, JoinKind::RightOuter);
    assert_fires(&roj, "RojCommute");
    let mut ids = IdGen::new();
    let (foj, _, _) = nation_region_join(&mut ids, JoinKind::FullOuter);
    assert_fires(&foj, "FojCommute");
}

#[test]
fn join_associates_both_ways() {
    let mut ids = IdGen::new();
    let s = get("supplier", &mut ids);
    let n = get("nation", &mut ids);
    let r = get("region", &mut ids);
    let p1 = eq(s.output_col(2), n.output_col(0));
    let p2 = eq(n.output_col(2), r.output_col(0));
    let inner = LogicalTree::join(JoinKind::Inner, s, n, p1);
    let tree = LogicalTree::join(JoinKind::Inner, inner, r, p2);
    assert_fires(&tree, "InnerJoinAssocLeft");
    // The rotated form appears in the memo, so the inverse fires too.
    assert_fires(&tree, "InnerJoinAssocRight");
}

#[test]
fn join_loj_assoc_requires_rs_predicate() {
    // R JOIN (S LOJ T) with the join predicate on R,S: fires.
    let mut ids = IdGen::new();
    let r = get("supplier", &mut ids);
    let s = get("nation", &mut ids);
    let t = get("region", &mut ids);
    let (r_nat, s_key, s_reg, t_key) = (
        r.output_col(2),
        s.output_col(0),
        s.output_col(2),
        t.output_col(0),
    );
    let loj = LogicalTree::join(JoinKind::LeftOuter, s, t, eq(s_reg, t_key));
    let good = LogicalTree::join(JoinKind::Inner, r, loj.clone(), eq(r_nat, s_key));
    assert_fires(&good, "JoinLojAssoc");

    // Predicate touching T: must not fire.
    let mut ids = IdGen::new();
    let r = get("supplier", &mut ids);
    let s = get("nation", &mut ids);
    let t = get("region", &mut ids);
    let (r_nat, s_reg, t_key) = (r.output_col(2), s.output_col(2), t.output_col(0));
    let loj = LogicalTree::join(JoinKind::LeftOuter, s, t, eq(s_reg, t_key));
    let bad = LogicalTree::join(JoinKind::Inner, r, loj, eq(r_nat, t_key));
    assert_silent(&bad, "JoinLojAssoc");
}

#[test]
fn join_loj_assoc_inverse_requires_st_predicate() {
    // (R JOIN S) LOJ T with outer predicate on S,T: fires.
    let mut ids = IdGen::new();
    let r = get("supplier", &mut ids);
    let s = get("nation", &mut ids);
    let t = get("region", &mut ids);
    let (r_nat, s_key, s_reg, t_key) = (
        r.output_col(2),
        s.output_col(0),
        s.output_col(2),
        t.output_col(0),
    );
    let inner = LogicalTree::join(JoinKind::Inner, r, s, eq(r_nat, s_key));
    let good = LogicalTree::join(JoinKind::LeftOuter, inner.clone(), t, eq(s_reg, t_key));
    assert_fires(&good, "JoinLojAssocInv");

    // Outer predicate touching *both* inner inputs: silent in either
    // commutation (note: a predicate touching only R would still enable
    // the rule through the commuted inner join — a legitimate firing).
    let mut ids = IdGen::new();
    let r = get("supplier", &mut ids);
    let s = get("nation", &mut ids);
    let t = get("region", &mut ids);
    let (r_nat, s_key) = (r.output_col(2), s.output_col(0));
    let inner = LogicalTree::join(JoinKind::Inner, r, s, eq(r_nat, s_key));
    let bad = LogicalTree::join(JoinKind::LeftOuter, inner, t, eq(r_nat, s_key));
    assert_silent(&bad, "JoinLojAssocInv");
}

#[test]
fn join_distributes_over_unions() {
    let mut ids = IdGen::new();
    let (union, outs) = region_union(&mut ids);
    let x = get("nation", &mut ids);
    let left = LogicalTree::join(
        JoinKind::Inner,
        union.clone(),
        x.clone(),
        eq(outs[0], x.output_col(2)),
    );
    assert_fires(&left, "JoinDistributeUnionLeft");

    let right = LogicalTree::join(
        JoinKind::Inner,
        x.clone(),
        union.clone(),
        eq(x.output_col(2), outs[0]),
    );
    assert_fires(&right, "JoinDistributeUnionRight");

    // Right-row-driven kinds do not distribute over a left union.
    let mut ids = IdGen::new();
    let (union, outs) = region_union(&mut ids);
    let x = get("nation", &mut ids);
    let roj = LogicalTree::join(
        JoinKind::RightOuter,
        union,
        x.clone(),
        eq(outs[0], x.output_col(2)),
    );
    assert_silent(&roj, "JoinDistributeUnionLeft");
}

#[test]
fn semi_join_to_inner_needs_a_unique_probe_column() {
    // Probe side region on its PK: fires.
    let mut ids = IdGen::new();
    let n = get("nation", &mut ids);
    let r = get("region", &mut ids);
    let semi = LogicalTree::join(
        JoinKind::LeftSemi,
        n.clone(),
        r.clone(),
        eq(n.output_col(2), r.output_col(0)),
    );
    assert_fires(&semi, "SemiJoinToInnerOnKey");

    // Probe side nation on a non-unique column: silent.
    let mut ids = IdGen::new();
    let r = get("region", &mut ids);
    let n = get("nation", &mut ids);
    let semi = LogicalTree::join(
        JoinKind::LeftSemi,
        r.clone(),
        n.clone(),
        eq(r.output_col(0), n.output_col(2)),
    );
    assert_silent(&semi, "SemiJoinToInnerOnKey");
}

#[test]
fn anti_join_rewrite_needs_an_equi_conjunct() {
    let mut ids = IdGen::new();
    let n = get("nation", &mut ids);
    let r = get("region", &mut ids);
    let anti = LogicalTree::join(
        JoinKind::LeftAnti,
        n.clone(),
        r.clone(),
        eq(n.output_col(2), r.output_col(0)),
    );
    assert_fires(&anti, "AntiJoinToLojFilter");

    let mut ids = IdGen::new();
    let n = get("nation", &mut ids);
    let r = get("region", &mut ids);
    let anti_true = LogicalTree::join(JoinKind::LeftAnti, n, r, Expr::true_lit());
    assert_silent(&anti_true, "AntiJoinToLojFilter");
}

// ---------- select rules ----------

fn lit_pred(col: ColId) -> Expr {
    Expr::bin(BinOp::Gt, Expr::col(col), Expr::lit(1i64))
}

#[test]
fn select_merge_and_split() {
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let nested = LogicalTree::select(LogicalTree::select(t, lit_pred(k)), lit_pred(k));
    assert_fires(&nested, "SelectMerge");

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let both = LogicalTree::select(t, Expr::and(lit_pred(k), eq(k, k)));
    assert_fires(&both, "SelectSplit");

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let single = LogicalTree::select(t, lit_pred(k));
    assert_silent(&single, "SelectSplit");
}

#[test]
fn select_pushdown_below_inner_join_needs_a_one_sided_conjunct() {
    let mut ids = IdGen::new();
    let (j, nk, _) = nation_region_join(&mut ids, JoinKind::Inner);
    let pushable = LogicalTree::select(j.clone(), lit_pred(nk));
    assert_fires(&pushable, "SelectPushBelowInnerJoin");
    assert_fires(&pushable, "SelectIntoInnerJoin");

    // A strictly cross-side conjunct cannot move below either input.
    let mut ids = IdGen::new();
    let n = get("nation", &mut ids);
    let r = get("region", &mut ids);
    let cross = Expr::bin(
        BinOp::Lt,
        Expr::col(n.output_col(0)),
        Expr::col(r.output_col(0)),
    );
    let j = LogicalTree::join(JoinKind::Inner, n.clone(), r, eq(n.output_col(2), ColId(3)));
    let unpushable = LogicalTree::select(j, cross);
    assert_silent(&unpushable, "SelectPushBelowInnerJoin");
}

#[test]
fn select_pushdown_below_outer_join_only_on_the_preserved_side() {
    let mut ids = IdGen::new();
    let (loj, nk, rk) = nation_region_join(&mut ids, JoinKind::LeftOuter);
    let preserved = LogicalTree::select(loj.clone(), lit_pred(nk));
    assert_fires(&preserved, "SelectPushBelowOuterJoin");

    let null_supplying = LogicalTree::select(loj, Expr::is_null(Expr::col(rk)));
    assert_silent(&null_supplying, "SelectPushBelowOuterJoin");
}

#[test]
fn select_pushdown_below_semi_sort_distinct_union_project() {
    let mut ids = IdGen::new();
    let n = get("nation", &mut ids);
    let r = get("region", &mut ids);
    let nk = n.output_col(0);
    let semi = LogicalTree::join(JoinKind::LeftSemi, n, r, Expr::true_lit());
    assert_fires(
        &LogicalTree::select(semi, lit_pred(nk)),
        "SelectPushBelowSemiJoin",
    );

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let sorted = LogicalTree::sort(t, vec![SortKey::asc(k)]);
    assert_fires(
        &LogicalTree::select(sorted, lit_pred(k)),
        "SelectPushBelowSort",
    );

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let d = LogicalTree::distinct(t);
    assert_fires(
        &LogicalTree::select(d, lit_pred(k)),
        "SelectPushBelowDistinct",
    );

    let mut ids = IdGen::new();
    let (u, outs) = region_union(&mut ids);
    assert_fires(
        &LogicalTree::select(u, lit_pred(outs[0])),
        "SelectPushBelowUnionAll",
    );

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let out = ids.fresh();
    let proj = LogicalTree::project(t, vec![(out, Expr::col(k))]);
    assert_fires(
        &LogicalTree::select(proj, lit_pred(out)),
        "SelectPushBelowProject",
    );
}

#[test]
fn select_pull_above_project_needs_surviving_columns() {
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let out = ids.fresh();
    let sel = LogicalTree::select(t, lit_pred(k));
    let pullable = LogicalTree::project(sel.clone(), vec![(out, Expr::col(k))]);
    assert_fires(&pullable, "SelectPullAboveProject");

    // Predicate column does not survive (only a computed expr does).
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let out = ids.fresh();
    let sel = LogicalTree::select(t, lit_pred(k));
    let blocked = LogicalTree::project(
        sel,
        vec![(out, Expr::bin(BinOp::Add, Expr::col(k), Expr::lit(1i64)))],
    );
    assert_silent(&blocked, "SelectPullAboveProject");
}

#[test]
fn select_pushdown_below_gbagg_only_on_grouping_columns() {
    let mut ids = IdGen::new();
    let t = get("supplier", &mut ids);
    let (nat, acct) = (t.output_col(2), t.output_col(3));
    let cnt = ids.fresh();
    let agg = LogicalTree::gbagg(
        t,
        vec![nat],
        vec![AggCall::new(AggFunc::Count, Some(acct), cnt)],
    );
    assert_fires(
        &LogicalTree::select(agg.clone(), lit_pred(nat)),
        "SelectPushBelowGbAgg",
    );
    assert_silent(
        &LogicalTree::select(agg, lit_pred(cnt)),
        "SelectPushBelowGbAgg",
    );
}

#[test]
fn outer_join_simplify_needs_null_rejection() {
    let mut ids = IdGen::new();
    let (loj, _, rk) = nation_region_join(&mut ids, JoinKind::LeftOuter);
    let rejecting = LogicalTree::select(loj.clone(), lit_pred(rk));
    assert_fires(&rejecting, "OuterJoinSimplify");

    let accepting = LogicalTree::select(loj, Expr::is_null(Expr::col(rk)));
    assert_silent(&accepting, "OuterJoinSimplify");
}

// ---------- aggregation rules ----------

#[test]
fn distinct_to_gbagg_and_split() {
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    assert_fires(&LogicalTree::distinct(t), "DistinctToGbAgg");

    let mut ids = IdGen::new();
    let t = get("supplier", &mut ids);
    let nat = t.output_col(2);
    let out = ids.fresh();
    let agg = LogicalTree::gbagg(
        t,
        vec![nat],
        vec![AggCall::new(AggFunc::CountStar, None, out)],
    );
    assert_fires(&agg, "GbAggSplitLocalGlobal");
}

#[test]
fn eager_aggregation_respects_argument_sides_and_count_scalar_guard() {
    // SUM over a left-side column, grouped: left eager push fires.
    let mut ids = IdGen::new();
    let s = get("supplier", &mut ids);
    let n = get("nation", &mut ids);
    let (s_nat, s_acct, n_key, n_name) = (
        s.output_col(2),
        s.output_col(3),
        n.output_col(0),
        n.output_col(1),
    );
    let join = LogicalTree::join(JoinKind::Inner, s, n, eq(s_nat, n_key));
    let out = ids.fresh();
    let left_sum = LogicalTree::gbagg(
        join.clone(),
        vec![n_name],
        vec![AggCall::new(AggFunc::Sum, Some(s_acct), out)],
    );
    assert_fires(&left_sum, "EagerGbAggPushBelowJoinLeft");
    // Join commutativity would put the supplier side on the right and
    // legitimately enable the mirror; with commutativity masked, the side
    // precondition shows.
    assert!(!exercises_masked(
        &left_sum,
        "EagerGbAggPushBelowJoinRight",
        &["InnerJoinCommute"]
    ));

    // MAX over a right-side column: the mirror fires.
    let out2 = ids.fresh();
    let right_max = LogicalTree::gbagg(
        join.clone(),
        vec![s_nat],
        vec![AggCall::new(AggFunc::Max, Some(n_name), out2)],
    );
    assert_fires(&right_max, "EagerGbAggPushBelowJoinRight");
    assert!(!exercises_masked(
        &right_max,
        "EagerGbAggPushBelowJoinLeft",
        &["InnerJoinCommute"]
    ));

    // Scalar COUNT: both sides blocked (empty-join edge case).
    let out3 = ids.fresh();
    let scalar_count = LogicalTree::gbagg(
        join,
        vec![],
        vec![AggCall::new(AggFunc::CountStar, None, out3)],
    );
    assert_silent(&scalar_count, "EagerGbAggPushBelowJoinLeft");
    assert_silent(&scalar_count, "EagerGbAggPushBelowJoinRight");
}

#[test]
fn gbagg_elimination_needs_a_covering_key() {
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let (pk, name) = (t.output_col(0), t.output_col(1));
    let out = ids.fresh();
    let keyed = LogicalTree::gbagg(
        t.clone(),
        vec![pk],
        vec![AggCall::new(AggFunc::Max, Some(name), out)],
    );
    assert_fires(&keyed, "GbAggEliminateOnKey");

    // Grouping on a non-key column of nation: silent.
    let mut ids = IdGen::new();
    let t = get("nation", &mut ids);
    let reg = t.output_col(2);
    let out = ids.fresh();
    let unkeyed = LogicalTree::gbagg(
        t,
        vec![reg],
        vec![AggCall::new(AggFunc::CountStar, None, out)],
    );
    assert_silent(&unkeyed, "GbAggEliminateOnKey");

    // COUNT(col) cannot be rewritten without a conditional: silent.
    let mut ids = IdGen::new();
    let t = get("supplier", &mut ids);
    let (pk, acct) = (t.output_col(0), t.output_col(3));
    let out = ids.fresh();
    let counted = LogicalTree::gbagg(
        t,
        vec![pk],
        vec![AggCall::new(AggFunc::Count, Some(acct), out)],
    );
    assert_silent(&counted, "GbAggEliminateOnKey");
}

// ---------- union / project / sort / top rules ----------

#[test]
fn union_commute_and_assoc() {
    let mut ids = IdGen::new();
    let (u, _) = region_union(&mut ids);
    assert_fires(&u, "UnionAllCommute");

    let mut ids = IdGen::new();
    let (u, outs) = region_union(&mut ids);
    let c = get("region", &mut ids);
    let (c0, c1) = (c.output_col(0), c.output_col(1));
    let outs2 = vec![ids.fresh(), ids.fresh()];
    let nested = LogicalTree::union_all(u, c, outs2, outs, vec![c0, c1]);
    assert_fires(&nested, "UnionAllAssoc");
}

#[test]
fn distinct_and_project_push_below_union() {
    let mut ids = IdGen::new();
    let (u, _) = region_union(&mut ids);
    assert_fires(&LogicalTree::distinct(u), "DistinctPushBelowUnionAll");

    let mut ids = IdGen::new();
    let (u, outs) = region_union(&mut ids);
    let out = ids.fresh();
    let proj = LogicalTree::project(u, vec![(out, Expr::col(outs[0]))]);
    assert_fires(&proj, "ProjectPushBelowUnionAll");
}

#[test]
fn project_merge() {
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let o1 = ids.fresh();
    let o2 = ids.fresh();
    let inner = LogicalTree::project(t, vec![(o1, Expr::col(k))]);
    let outer = LogicalTree::project(inner, vec![(o2, Expr::col(o1))]);
    assert_fires(&outer, "ProjectMerge");
}

#[test]
fn sort_rules() {
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let double_sort = LogicalTree::sort(
        LogicalTree::sort(t, vec![SortKey::asc(k)]),
        vec![SortKey::desc(k)],
    );
    assert_fires(&double_sort, "SortCollapse");

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let out = ids.fresh();
    let agg_over_sort = LogicalTree::gbagg(
        LogicalTree::sort(t, vec![SortKey::asc(k)]),
        vec![k],
        vec![AggCall::new(AggFunc::CountStar, None, out)],
    );
    assert_fires(&agg_over_sort, "SortElimBelowGbAgg");

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let d = LogicalTree::distinct(LogicalTree::sort(t, vec![SortKey::asc(k)]));
    assert_fires(&d, "SortElimBelowDistinct");
}

#[test]
fn top_rules_require_matching_keys() {
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let keys = vec![SortKey::asc(k)];
    let same = LogicalTree::top(LogicalTree::top(t, 10, keys.clone()), 5, keys.clone());
    assert_fires(&same, "TopTopCollapse");

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let (k, name) = (t.output_col(0), t.output_col(1));
    let diff = LogicalTree::top(
        LogicalTree::top(t, 10, vec![SortKey::asc(name)]),
        5,
        vec![SortKey::asc(k)],
    );
    assert_silent(&diff, "TopTopCollapse");

    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let k = t.output_col(0);
    let absorb = LogicalTree::top(
        LogicalTree::sort(t, vec![SortKey::desc(k)]),
        3,
        vec![SortKey::asc(k)],
    );
    assert_fires(&absorb, "TopSortAbsorb");
}

// ---------- implementation rules ----------

#[test]
fn index_seek_needs_a_single_column_pk_equality() {
    let mut ids = IdGen::new();
    let t = get("region", &mut ids);
    let pk = t.output_col(0);
    let seekable = LogicalTree::select(t, Expr::eq(Expr::col(pk), Expr::lit(1i64)));
    assert_fires(&seekable, "SelectGetToIndexSeek");

    // Non-key column equality: silent.
    let mut ids = IdGen::new();
    let t = get("nation", &mut ids);
    let reg = t.output_col(2);
    let unseekable = LogicalTree::select(t, Expr::eq(Expr::col(reg), Expr::lit(1i64)));
    assert_silent(&unseekable, "SelectGetToIndexSeek");

    // Composite-PK table: silent.
    let mut ids = IdGen::new();
    let t = get("lineitem", &mut ids);
    let ok = t.output_col(0);
    let composite = LogicalTree::select(t, Expr::eq(Expr::col(ok), Expr::lit(1i64)));
    assert_silent(&composite, "SelectGetToIndexSeek");
}

#[test]
fn hash_and_merge_joins_need_equi_conjuncts() {
    let mut ids = IdGen::new();
    let (j, _, _) = nation_region_join(&mut ids, JoinKind::Inner);
    assert_fires(&j, "JoinToHashJoin");
    assert_fires(&j, "InnerJoinToMergeJoin");
    assert_fires(&j, "JoinToNestedLoops");

    let mut ids = IdGen::new();
    let n = get("nation", &mut ids);
    let r = get("region", &mut ids);
    let cross = LogicalTree::join(JoinKind::Inner, n, r, Expr::true_lit());
    assert_silent(&cross, "JoinToHashJoin");
    assert_silent(&cross, "InnerJoinToMergeJoin");
    assert_fires(&cross, "JoinToNestedLoops");
}

#[test]
fn merge_join_is_inner_only() {
    let mut ids = IdGen::new();
    let (loj, _, _) = nation_region_join(&mut ids, JoinKind::LeftOuter);
    assert_silent(&loj, "InnerJoinToMergeJoin");
    assert_fires(&loj, "JoinToHashJoin");
}

#[test]
fn every_exploration_rule_has_a_firing_witness_somewhere_in_this_file() {
    // Meta-test: collect the rules asserted above and make sure the file
    // covers the complete exploration catalog (prevents silent drift when
    // rules are added).
    let opt = optimizer();
    let covered: Vec<&str> = vec![
        "InnerJoinCommute",
        "InnerJoinAssocLeft",
        "InnerJoinAssocRight",
        "LojCommute",
        "RojCommute",
        "FojCommute",
        "JoinLojAssoc",
        "JoinLojAssocInv",
        "JoinDistributeUnionLeft",
        "JoinDistributeUnionRight",
        "SemiJoinToInnerOnKey",
        "AntiJoinToLojFilter",
        "SelectMerge",
        "SelectSplit",
        "SelectPushBelowInnerJoin",
        "SelectPushBelowOuterJoin",
        "SelectPushBelowSemiJoin",
        "SelectPushBelowProject",
        "SelectPullAboveProject",
        "SelectPushBelowUnionAll",
        "SelectPushBelowGbAgg",
        "SelectPushBelowSort",
        "SelectPushBelowDistinct",
        "SelectIntoInnerJoin",
        "OuterJoinSimplify",
        "DistinctToGbAgg",
        "GbAggSplitLocalGlobal",
        "EagerGbAggPushBelowJoinLeft",
        "EagerGbAggPushBelowJoinRight",
        "GbAggEliminateOnKey",
        "UnionAllCommute",
        "UnionAllAssoc",
        "DistinctPushBelowUnionAll",
        "ProjectMerge",
        "ProjectPushBelowUnionAll",
        "SortCollapse",
        "SortElimBelowGbAgg",
        "SortElimBelowDistinct",
        "TopTopCollapse",
        "TopSortAbsorb",
    ];
    for rid in opt.exploration_rule_ids() {
        let name = opt.rule(rid).name;
        assert!(
            covered.contains(&name),
            "exploration rule {name} has no firing test in rule_firing.rs"
        );
    }
    assert_eq!(covered.len(), opt.exploration_rule_ids().len());
}
