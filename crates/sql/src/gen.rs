//! Logical tree -> SQL text.
//!
//! Every operator becomes a derived table; every column is aliased by its
//! column id (`c17`), so generated SQL is unambiguous under self-joins and
//! arbitrary transformations, and parses back to the identical tree.

use ruletest_common::{ColId, Error, Result};
use ruletest_expr::{AggCall, BinOp, Expr};
use ruletest_logical::{JoinKind, LogicalTree, Operator, SortKey};
use ruletest_storage::Catalog;

/// Renders a scalar expression in SQL syntax (columns as `c<id>`).
pub fn expr_sql(e: &Expr) -> String {
    match e {
        Expr::Col(c) => format!("c{}", c.0),
        Expr::Lit(v) => v.to_sql_literal(),
        Expr::Bin { op, left, right } => {
            format!("({} {} {})", expr_sql(left), op_sql(*op), expr_sql(right))
        }
        Expr::Not(inner) => format!("(NOT {})", expr_sql(inner)),
        Expr::IsNull(inner) => format!("({} IS NULL)", expr_sql(inner)),
    }
}

fn op_sql(op: BinOp) -> &'static str {
    op.sql()
}

fn col(c: ColId) -> String {
    format!("c{}", c.0)
}

fn order_by(keys: &[SortKey]) -> String {
    let parts: Vec<String> = keys
        .iter()
        .map(|k| {
            if k.descending {
                format!("{} DESC", col(k.col))
            } else {
                col(k.col)
            }
        })
        .collect();
    format!("ORDER BY {}", parts.join(", "))
}

fn agg_sql(call: &AggCall) -> String {
    let rendered = match call.arg {
        Some(a) => call.render(&col(a)),
        None => call.render(""),
    };
    format!("{} AS {}", rendered, col(call.output))
}

/// Generates a complete SQL statement for `tree`.
pub fn to_sql(catalog: &Catalog, tree: &LogicalTree) -> Result<String> {
    let mut counter = 0usize;
    render(catalog, tree, &mut counter)
}

fn fresh_alias(counter: &mut usize) -> String {
    let a = format!("t{counter}");
    *counter += 1;
    a
}

fn derived(catalog: &Catalog, node: &LogicalTree, counter: &mut usize) -> Result<String> {
    let inner = render(catalog, node, counter)?;
    let alias = fresh_alias(counter);
    Ok(format!("({inner}) {alias}"))
}

fn render(catalog: &Catalog, tree: &LogicalTree, counter: &mut usize) -> Result<String> {
    match &tree.op {
        Operator::Get { table, cols } => {
            let def = catalog.table(*table)?;
            let items: Vec<String> = def
                .columns
                .iter()
                .zip(cols)
                .map(|(cd, id)| format!("{} AS {}", cd.name, col(*id)))
                .collect();
            Ok(format!("SELECT {} FROM {}", items.join(", "), def.name))
        }
        Operator::Select { predicate } => {
            let from = derived(catalog, &tree.children[0], counter)?;
            Ok(format!(
                "SELECT * FROM {from} WHERE {}",
                expr_sql(predicate)
            ))
        }
        Operator::Project { outputs } => {
            let from = derived(catalog, &tree.children[0], counter)?;
            let items: Vec<String> = outputs
                .iter()
                .map(|(id, e)| format!("{} AS {}", expr_sql(e), col(*id)))
                .collect();
            Ok(format!("SELECT {} FROM {from}", items.join(", ")))
        }
        Operator::Join { kind, predicate } => {
            let left = derived(catalog, &tree.children[0], counter)?;
            let right = derived(catalog, &tree.children[1], counter)?;
            match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    let not = if *kind == JoinKind::LeftAnti {
                        "NOT "
                    } else {
                        ""
                    };
                    Ok(format!(
                        "SELECT * FROM {left} WHERE {not}EXISTS (SELECT 1 FROM {right} WHERE {})",
                        expr_sql(predicate)
                    ))
                }
                _ => {
                    let kw = match kind {
                        JoinKind::Inner => "INNER JOIN",
                        JoinKind::LeftOuter => "LEFT OUTER JOIN",
                        JoinKind::RightOuter => "RIGHT OUTER JOIN",
                        JoinKind::FullOuter => "FULL OUTER JOIN",
                        JoinKind::LeftSemi | JoinKind::LeftAnti => {
                            return Err(Error::unsupported(
                                "semi/anti join has no JOIN-keyword rendering",
                            ))
                        }
                    };
                    Ok(format!(
                        "SELECT * FROM {left} {kw} {right} ON {}",
                        expr_sql(predicate)
                    ))
                }
            }
        }
        Operator::GbAgg { group_by, aggs } => {
            let from = derived(catalog, &tree.children[0], counter)?;
            let mut items: Vec<String> = group_by.iter().map(|g| col(*g)).collect();
            items.extend(aggs.iter().map(agg_sql));
            let select = if items.is_empty() {
                // Degenerate scalar aggregation with no outputs; still valid.
                "COUNT(*) AS c_unused".to_string()
            } else {
                items.join(", ")
            };
            if group_by.is_empty() {
                Ok(format!("SELECT {select} FROM {from}"))
            } else {
                let keys: Vec<String> = group_by.iter().map(|g| col(*g)).collect();
                Ok(format!(
                    "SELECT {select} FROM {from} GROUP BY {}",
                    keys.join(", ")
                ))
            }
        }
        Operator::UnionAll {
            outputs,
            left_cols,
            right_cols,
        } => {
            let left = derived(catalog, &tree.children[0], counter)?;
            let right = derived(catalog, &tree.children[1], counter)?;
            let litems: Vec<String> = left_cols
                .iter()
                .zip(outputs)
                .map(|(l, o)| format!("{} AS {}", col(*l), col(*o)))
                .collect();
            let ritems: Vec<String> = right_cols
                .iter()
                .zip(outputs)
                .map(|(r, o)| format!("{} AS {}", col(*r), col(*o)))
                .collect();
            Ok(format!(
                "SELECT {} FROM {left} UNION ALL SELECT {} FROM {right}",
                litems.join(", "),
                ritems.join(", ")
            ))
        }
        Operator::Distinct => {
            let from = derived(catalog, &tree.children[0], counter)?;
            Ok(format!("SELECT DISTINCT * FROM {from}"))
        }
        Operator::Sort { keys } => {
            let from = derived(catalog, &tree.children[0], counter)?;
            Ok(format!("SELECT * FROM {from} {}", order_by(keys)))
        }
        Operator::Top { n, keys } => {
            let from = derived(catalog, &tree.children[0], counter)?;
            if keys.is_empty() {
                Ok(format!("SELECT * FROM {from} LIMIT {n}"))
            } else {
                Ok(format!("SELECT * FROM {from} {} LIMIT {n}", order_by(keys)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_expr::{AggFunc, Expr};
    use ruletest_logical::IdGen;
    use ruletest_storage::tpch_catalog;

    fn get(cat: &Catalog, name: &str, ids: &mut IdGen) -> LogicalTree {
        LogicalTree::get(cat.table_by_name(name).unwrap(), ids)
    }

    #[test]
    fn get_renders_aliased_columns() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let t = get(&cat, "region", &mut ids);
        let sql = to_sql(&cat, &t).unwrap();
        assert_eq!(sql, "SELECT r_regionkey AS c0, r_name AS c1 FROM region");
    }

    #[test]
    fn select_and_join_nest_derived_tables() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let l = get(&cat, "region", &mut ids);
        let r = get(&cat, "nation", &mut ids);
        let pred = Expr::eq(Expr::col(l.output_col(0)), Expr::col(r.output_col(2)));
        let j = LogicalTree::join(JoinKind::LeftOuter, l, r, pred);
        let q = LogicalTree::select(j, Expr::true_lit());
        let sql = to_sql(&cat, &q).unwrap();
        assert!(sql.contains("LEFT OUTER JOIN"));
        assert!(sql.contains("ON (c0 = c4)"));
        assert!(sql.ends_with("WHERE TRUE"));
    }

    #[test]
    fn semi_join_renders_exists() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let l = get(&cat, "nation", &mut ids);
        let r = get(&cat, "region", &mut ids);
        let pred = Expr::eq(Expr::col(l.output_col(2)), Expr::col(r.output_col(0)));
        let semi = LogicalTree::join(JoinKind::LeftSemi, l.clone(), r.clone(), pred.clone());
        let sql = to_sql(&cat, &semi).unwrap();
        assert!(sql.contains("WHERE EXISTS (SELECT 1 FROM"));
        let anti = LogicalTree::join(JoinKind::LeftAnti, l, r, pred);
        let sql = to_sql(&cat, &anti).unwrap();
        assert!(sql.contains("WHERE NOT EXISTS"));
    }

    #[test]
    fn gbagg_renders_group_by_and_aggs() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let t = get(&cat, "supplier", &mut ids);
        let nat = t.output_col(2);
        let acct = t.output_col(3);
        let c1 = ids.fresh();
        let c2 = ids.fresh();
        let agg = LogicalTree::gbagg(
            t,
            vec![nat],
            vec![
                AggCall::new(AggFunc::CountStar, None, c1),
                AggCall::new(AggFunc::Sum, Some(acct), c2),
            ],
        );
        let sql = to_sql(&cat, &agg).unwrap();
        assert!(sql.contains("COUNT(*) AS c4"));
        assert!(sql.contains("SUM(c3) AS c5"));
        assert!(sql.ends_with("GROUP BY c2"));
    }

    #[test]
    fn union_distinct_sort_top_render() {
        let cat = tpch_catalog();
        let mut ids = IdGen::new();
        let a = get(&cat, "region", &mut ids);
        let b = get(&cat, "region", &mut ids);
        let (a0, a1) = (a.output_col(0), a.output_col(1));
        let (b0, b1) = (b.output_col(0), b.output_col(1));
        let outs = vec![ids.fresh(), ids.fresh()];
        let u = LogicalTree::union_all(a, b, outs.clone(), vec![a0, a1], vec![b0, b1]);
        let d = LogicalTree::distinct(u);
        let top = LogicalTree::top(d, 5, vec![SortKey::desc(outs[0])]);
        let sql = to_sql(&cat, &top).unwrap();
        assert!(sql.contains("UNION ALL"));
        assert!(sql.contains("SELECT DISTINCT *"));
        assert!(sql.contains("ORDER BY c4 DESC"));
        assert!(sql.ends_with("LIMIT 5"));
    }

    #[test]
    fn expr_rendering() {
        let e = Expr::and(
            Expr::eq(Expr::col(ColId(3)), Expr::lit("O'Brien")),
            Expr::not(Expr::is_null(Expr::col(ColId(4)))),
        );
        assert_eq!(expr_sql(&e), "((c3 = 'O''Brien') AND (NOT (c4 IS NULL)))");
    }
}
