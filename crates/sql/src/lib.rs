//! SQL text generation and parsing for logical query trees.
//!
//! `to_sql` is the "Generate SQL" module of the paper's architecture
//! (§2.3, Figure 2; functionality modeled on [9]): it turns any logical
//! query tree into an executable SQL statement in a small, explicit
//! dialect where every column is aliased `c<id>`. The parser reads the
//! same dialect (plus ordinary catalog-resolved SQL over base tables)
//! back into logical trees, giving the framework an end-to-end
//! tree -> SQL -> tree round trip.
//!
//! Dialect notes: `SEMI`/`ANTI` joins are spelled as `WHERE [NOT] EXISTS`
//! subqueries; `UNION` (distinct) parses as `Distinct(UNION ALL)`;
//! `ORDER BY` inside derived tables is permitted; `LIMIT n` with an
//! `ORDER BY` forms a `Top`.

//! # Example
//!
//! ```
//! use ruletest_storage::tpch_catalog;
//! use ruletest_sql::{parse_sql, to_sql};
//!
//! let catalog = tpch_catalog();
//! let tree = parse_sql(&catalog, "SELECT r_name FROM region WHERE r_regionkey = 1").unwrap();
//! let sql = to_sql(&catalog, &tree).unwrap();
//! let reparsed = parse_sql(&catalog, &sql).unwrap();
//! assert_eq!(tree, reparsed); // exact structural round trip
//! ```

pub mod gen;
pub mod parser;
pub mod token;

pub use gen::to_sql;
pub use parser::parse_sql;
