//! Recursive-descent SQL parser producing logical query trees.
//!
//! The parser accepts the dialect emitted by [`crate::gen::to_sql`] (every
//! column aliased `c<id>`, operators as nested derived tables) as well as
//! ordinary catalog-resolved SQL over base tables (`SELECT r_name FROM
//! region WHERE r_regionkey = 1`). Column aliases of the form `c<N>` pin
//! the column id to `N`, which is what makes tree -> SQL -> tree round
//! trips structurally exact.
//!
//! Dialect restrictions: `EXISTS` / `NOT EXISTS` only as top-level `WHERE`
//! conjuncts (they become semi/anti joins); aggregate calls only over bare
//! columns; `GROUP BY` only over bare columns.

use crate::token::{tokenize, Token};
use ruletest_common::{ColId, Error, Result, Value};
use ruletest_expr::{AggCall, AggFunc, BinOp, Expr};
use ruletest_logical::{IdGen, JoinKind, LogicalTree, SortKey};
use ruletest_storage::Catalog;

/// One visible column during name resolution.
#[derive(Debug, Clone)]
struct ScopeCol {
    qualifier: Option<String>,
    name: String,
    id: ColId,
}

type Scope = Vec<ScopeCol>;

/// Parses a SQL statement into a logical query tree.
pub fn parse_sql(catalog: &Catalog, sql: &str) -> Result<LogicalTree> {
    let tokens = tokenize(sql)?;
    // Pin the fresh-id allocator above every explicit c<N> alias so minted
    // ids never collide with pinned ones.
    let mut max_id = 0u32;
    for t in &tokens {
        if let Token::Ident(s) = t {
            if let Some(n) = parse_col_alias(s) {
                max_id = max_id.max(n.0 + 1);
            }
        }
    }
    let mut p = Parser {
        catalog,
        tokens,
        pos: 0,
        ids: {
            let mut g = IdGen::new();
            while g.peek_next() < max_id {
                g.fresh();
            }
            g
        },
    };
    let (tree, _) = p.parse_query(&Scope::new())?;
    p.expect_eof()?;
    Ok(tree)
}

/// `c<digits>` aliases pin the column id.
fn parse_col_alias(s: &str) -> Option<ColId> {
    let rest = s.strip_prefix('c')?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse::<u32>().ok().map(ColId)
}

/// Unresolved scalar expression.
#[derive(Debug, Clone)]
enum Ast {
    Ident(Option<String>, String),
    Lit(Value),
    Bin(BinOp, Box<Ast>, Box<Ast>),
    Not(Box<Ast>),
    IsNull(Box<Ast>, bool),
}

/// A parsed select item.
#[derive(Debug, Clone)]
enum Item {
    Expr(Ast, Option<String>),
    Agg(AggFunc, Option<Ast>, Option<String>),
}

struct Parser<'a> {
    catalog: &'a Catalog,
    tokens: Vec<Token>,
    pos: usize,
    ids: IdGen,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if self.peek().is_symbol(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected '{sym}', found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(Error::parse(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(Error::parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// Query := Select (UNION [ALL] Select)*
    fn parse_query(&mut self, outer: &Scope) -> Result<(LogicalTree, Vec<(String, ColId)>)> {
        let (mut tree, mut outputs) = self.parse_select(outer)?;
        while self.peek().is_kw("UNION") {
            self.bump();
            let distinct = !self.eat_kw("ALL");
            let (right, right_outputs) = self.parse_select(outer)?;
            if right_outputs.len() != outputs.len() {
                return Err(Error::parse("UNION arity mismatch"));
            }
            // A union side that is a pure column-rename projection is folded
            // into the union's id-based column maps instead of keeping the
            // synthetic Project — this is what makes generated
            // `SELECT cl AS co FROM ... UNION ALL ...` round-trip exactly.
            let (ltree, lsrc) = unwrap_pure_rename(tree);
            let (rtree, rsrc) = unwrap_pure_rename(right);
            // When a side keeps its projection, its visible ids are the
            // projection outputs themselves.
            let lcols_in: Vec<ColId> =
                lsrc.unwrap_or_else(|| outputs.iter().map(|(_, id)| *id).collect());
            let rcols_in: Vec<ColId> =
                rsrc.unwrap_or_else(|| right_outputs.iter().map(|(_, id)| *id).collect());
            // Union output ids: when both sides alias each position to the
            // same pinned `c<N>` name, keep it (round-trip exactness);
            // otherwise mint fresh ids.
            let mut out_ids = Vec::new();
            let mut left_cols = Vec::new();
            let mut right_cols = Vec::new();
            let mut names = Vec::new();
            for (i, ((lname, _), (rname, _))) in outputs.iter().zip(&right_outputs).enumerate() {
                let pinned = match (parse_col_alias(lname), parse_col_alias(rname)) {
                    (Some(a), Some(b)) if a == b => Some(a),
                    _ => None,
                };
                let out = pinned.unwrap_or_else(|| self.ids.fresh());
                out_ids.push(out);
                left_cols.push(lcols_in[i]);
                right_cols.push(rcols_in[i]);
                names.push((lname.clone(), out));
            }
            tree = LogicalTree::union_all(ltree, rtree, out_ids, left_cols, right_cols);
            if distinct {
                tree = LogicalTree::distinct(tree);
            }
            outputs = names;
        }
        Ok((tree, outputs))
    }

    /// Select := SELECT [DISTINCT] items FROM From [WHERE ...]
    ///           [GROUP BY ...] [ORDER BY ...] [LIMIT n]
    fn parse_select(&mut self, outer: &Scope) -> Result<(LogicalTree, Vec<(String, ColId)>)> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let items = self.parse_items()?;
        self.expect_kw("FROM")?;
        let (mut tree, scope, mut from_is_base) = self.parse_from_full(outer)?;

        // WHERE: plain conjuncts become a Select; EXISTS conjuncts become
        // semi/anti joins.
        if self.eat_kw("WHERE") {
            let (preds, exists) = self.parse_where(&scope, outer)?;
            for (negated, sub, on) in exists {
                let kind = if negated {
                    JoinKind::LeftAnti
                } else {
                    JoinKind::LeftSemi
                };
                tree = LogicalTree::join(kind, tree, sub, on);
            }
            if !preds.is_empty() {
                tree = LogicalTree::select(tree, ruletest_expr::conjoin(preds));
            }
            from_is_base = false;
        }

        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            let mut cols = Vec::new();
            loop {
                let ast = self.parse_expr()?;
                match self.resolve(&ast, &scope, outer)? {
                    Expr::Col(c) => cols.push(c),
                    other => {
                        return Err(Error::parse(format!(
                            "GROUP BY supports bare columns only, got {other}"
                        )))
                    }
                }
                if !self.eat_symbol(",") {
                    break;
                }
            }
            Some(cols)
        } else {
            None
        };

        let has_agg = items.iter().any(|i| matches!(i, Item::Agg(..)));
        let (mut tree, mut outputs) = if group_by.is_some() || has_agg {
            self.build_aggregate(tree, &scope, outer, &items, group_by.unwrap_or_default())?
        } else {
            self.build_projection(tree, &scope, outer, &items, from_is_base)?
        };

        if distinct {
            tree = LogicalTree::distinct(tree);
        }

        // ORDER BY / LIMIT over the projected outputs.
        let post_scope: Scope = outputs
            .iter()
            .map(|(name, id)| ScopeCol {
                qualifier: None,
                name: name.clone(),
                id: *id,
            })
            .collect();
        let mut keys = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let ast = self.parse_expr()?;
                let col = match self.resolve(&ast, &post_scope, outer)? {
                    Expr::Col(c) => c,
                    other => {
                        return Err(Error::parse(format!(
                            "ORDER BY supports bare columns only, got {other}"
                        )))
                    }
                };
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                keys.push(SortKey {
                    col,
                    descending: desc,
                });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            let n = match self.bump() {
                Token::Number(n) if n >= 0 => n as u64,
                other => return Err(Error::parse(format!("bad LIMIT operand {other:?}"))),
            };
            tree = LogicalTree::top(tree, n, keys);
        } else if !keys.is_empty() {
            tree = LogicalTree::sort(tree, keys);
        }
        let _ = &mut outputs;
        Ok((tree, outputs))
    }

    fn parse_items(&mut self) -> Result<Vec<Item>> {
        if self.eat_symbol("*") {
            return Ok(vec![]); // empty = star
        }
        let mut items = Vec::new();
        loop {
            let item = if let Some(func) = self.peek_agg_func() {
                self.bump();
                self.expect_symbol("(")?;
                let (func, arg) = if func == AggFunc::Count && self.eat_symbol("*") {
                    (AggFunc::CountStar, None)
                } else {
                    (func, Some(self.parse_expr()?))
                };
                self.expect_symbol(")")?;
                let alias = self.parse_alias()?;
                Item::Agg(func, arg, alias)
            } else {
                let ast = self.parse_expr()?;
                let alias = self.parse_alias()?;
                Item::Expr(ast, alias)
            };
            items.push(item);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(items)
    }

    fn peek_agg_func(&self) -> Option<AggFunc> {
        let Token::Ident(s) = self.peek() else {
            return None;
        };
        if !self.peek2().is_symbol("(") {
            return None;
        }
        match s.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            Ok(Some(self.expect_ident()?))
        } else {
            Ok(None)
        }
    }

    /// From := Primary (JoinClause)*
    fn parse_from(&mut self, outer: &Scope) -> Result<(LogicalTree, Scope)> {
        let (tree, scope, _) = self.parse_from_full(outer)?;
        Ok((tree, scope))
    }

    /// Like [`parse_from`], also reporting whether the clause was a single
    /// bare base table (which enables the Get rename-collapse).
    fn parse_from_full(&mut self, outer: &Scope) -> Result<(LogicalTree, Scope, bool)> {
        let table_start = matches!(self.peek(), Token::Ident(_));
        let (mut tree, mut scope) = self.parse_from_primary(outer)?;
        let mut single = table_start;
        loop {
            let kind = if self.peek().is_kw("JOIN") || self.peek().is_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.peek().is_kw("LEFT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::LeftOuter
            } else if self.peek().is_kw("RIGHT") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::RightOuter
            } else if self.peek().is_kw("FULL") {
                self.bump();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::FullOuter
            } else if self.peek().is_kw("CROSS") {
                self.bump();
                self.expect_kw("JOIN")?;
                single = false;
                let (right, right_scope) = self.parse_from_primary(outer)?;
                tree = LogicalTree::join(JoinKind::Inner, tree, right, Expr::true_lit());
                scope.extend(right_scope);
                continue;
            } else {
                break;
            };
            single = false;
            let (right, right_scope) = self.parse_from_primary(outer)?;
            let mut combined = scope.clone();
            combined.extend(right_scope.iter().cloned());
            self.expect_kw("ON")?;
            let ast = self.parse_expr()?;
            let on = self.resolve(&ast, &combined, outer)?;
            tree = LogicalTree::join(kind, tree, right, on);
            scope = combined;
        }
        Ok((tree, scope, single))
    }

    fn parse_from_primary(&mut self, outer: &Scope) -> Result<(LogicalTree, Scope)> {
        if self.eat_symbol("(") {
            let (tree, outputs) = self.parse_query(outer)?;
            self.expect_symbol(")")?;
            // Derived-table alias (optional AS).
            self.eat_kw("AS");
            let alias = self.expect_ident()?;
            let scope = outputs
                .into_iter()
                .map(|(name, id)| ScopeCol {
                    qualifier: Some(alias.clone()),
                    name,
                    id,
                })
                .collect();
            Ok((tree, scope))
        } else {
            let name = self.expect_ident()?;
            let def = self.catalog.table_by_name(&name)?;
            let tree = LogicalTree::get(def, &mut self.ids);
            let cols = match &tree.op {
                ruletest_logical::Operator::Get { cols, .. } => cols.clone(),
                _ => return Err(Error::internal("table scan did not produce a Get")),
            };
            // Optional alias (bare identifier that is not a clause keyword).
            let alias = match self.peek() {
                Token::Ident(s) if !is_clause_keyword(s) && !self.peek().is_symbol("(") => {
                    Some(self.expect_ident()?)
                }
                _ => None,
            };
            let qualifier = alias.unwrap_or_else(|| name.clone());
            let scope = def
                .columns
                .iter()
                .zip(cols)
                .map(|(cd, id)| ScopeCol {
                    qualifier: Some(qualifier.clone()),
                    name: cd.name.clone(),
                    id,
                })
                .collect();
            Ok((tree, scope))
        }
    }

    /// WHERE clause: top-level conjuncts, with EXISTS/NOT EXISTS peeled off
    /// into semi/anti joins.
    #[allow(clippy::type_complexity)]
    fn parse_where(
        &mut self,
        scope: &Scope,
        outer: &Scope,
    ) -> Result<(Vec<Expr>, Vec<(bool, LogicalTree, Expr)>)> {
        let mut preds = Vec::new();
        let mut exists = Vec::new();
        // When the clause contains no EXISTS, parse it as one expression
        // with full operator precedence (top-level OR included).
        if !self.clause_contains_exists() {
            let ast = self.parse_expr()?;
            preds.push(self.resolve(&ast, scope, outer)?);
            return Ok((preds, exists));
        }
        loop {
            let negated = if self.peek().is_kw("NOT") && self.peek2().is_kw("EXISTS") {
                self.bump();
                true
            } else {
                false
            };
            if self.peek().is_kw("EXISTS") {
                self.bump();
                self.expect_symbol("(")?;
                // EXISTS (SELECT 1 FROM <sub> WHERE <pred>)
                self.expect_kw("SELECT")?;
                // The select list of an EXISTS subquery is irrelevant.
                if !self.eat_symbol("*") {
                    let _ = self.parse_expr()?;
                }
                self.expect_kw("FROM")?;
                let mut inner_outer = scope.clone();
                inner_outer.extend(outer.iter().cloned());
                let (sub, sub_scope) = self.parse_from(&inner_outer)?;
                let on = if self.eat_kw("WHERE") {
                    let mut combined = scope.clone();
                    combined.extend(sub_scope.iter().cloned());
                    let ast = self.parse_expr()?;
                    self.resolve(&ast, &combined, outer)?
                } else {
                    Expr::true_lit()
                };
                self.expect_symbol(")")?;
                exists.push((negated, sub, on));
            } else if negated {
                return Err(Error::parse("NOT EXISTS expected after NOT"));
            } else {
                let ast = self.parse_expr_no_and()?;
                preds.push(self.resolve(&ast, scope, outer)?);
            }
            if !self.eat_kw("AND") {
                break;
            }
        }
        if self.peek().is_kw("OR") {
            return Err(Error::unsupported(
                "top-level OR cannot be combined with EXISTS in this dialect",
            ));
        }
        Ok((preds, exists))
    }

    /// Lookahead: does the current WHERE clause (up to the next top-level
    /// clause keyword) contain an EXISTS?
    fn clause_contains_exists(&self) -> bool {
        let mut depth = 0i32;
        for t in &self.tokens[self.pos..] {
            match t {
                Token::Symbol("(") => depth += 1,
                Token::Symbol(")") => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                Token::Eof => return false,
                Token::Ident(s) if depth == 0 => {
                    if s.eq_ignore_ascii_case("EXISTS") {
                        return true;
                    }
                    if ["GROUP", "ORDER", "LIMIT", "UNION"]
                        .iter()
                        .any(|k| s.eq_ignore_ascii_case(k))
                    {
                        return false;
                    }
                }
                _ => {}
            }
        }
        false
    }

    fn build_projection(
        &mut self,
        tree: LogicalTree,
        scope: &Scope,
        outer: &Scope,
        items: &[Item],
        from_is_base: bool,
    ) -> Result<(LogicalTree, Vec<(String, ColId)>)> {
        if items.is_empty() {
            // SELECT *: pass the input through.
            let outputs = scope.iter().map(|c| (c.name.clone(), c.id)).collect();
            return Ok((tree, outputs));
        }
        let mut outputs = Vec::with_capacity(items.len());
        let mut proj = Vec::with_capacity(items.len());
        for item in items {
            let Item::Expr(ast, alias) = item else {
                return Err(Error::parse("aggregate outside GROUP BY context"));
            };
            let e = self.resolve(ast, scope, outer)?;
            let id = self.output_id(alias);
            let name = alias.clone().unwrap_or_else(|| display_name(ast, id));
            outputs.push((name, id));
            proj.push((id, e));
        }
        // Identity-collapse: a projection that renames a base Get's columns
        // one-to-one in order rebinds the Get instead of wrapping it (this
        // is what makes Get round-trip without synthetic Projects). Only
        // done when the FROM clause names the table directly — a derived
        // table that happens to BE a Get already carries pinned ids.
        if !from_is_base {
            return Ok((LogicalTree::project(tree, proj), outputs));
        }
        if let ruletest_logical::Operator::Get { table, cols } = &tree.op {
            let is_rename = proj.len() == cols.len()
                && proj
                    .iter()
                    .zip(cols)
                    .all(|((_, e), c)| matches!(e, Expr::Col(x) if x == c));
            if is_rename {
                let new_cols: Vec<ColId> = proj.iter().map(|(id, _)| *id).collect();
                return Ok((LogicalTree::get_with_cols(*table, new_cols), outputs));
            }
        }
        Ok((LogicalTree::project(tree, proj), outputs))
    }

    #[allow(clippy::type_complexity)]
    fn build_aggregate(
        &mut self,
        tree: LogicalTree,
        scope: &Scope,
        outer: &Scope,
        items: &[Item],
        group_by: Vec<ColId>,
    ) -> Result<(LogicalTree, Vec<(String, ColId)>)> {
        let mut outputs = Vec::new();
        let mut aggs = Vec::new();
        let mut group_out = Vec::new();
        for item in items {
            match item {
                Item::Expr(ast, alias) => {
                    let e = self.resolve(ast, scope, outer)?;
                    let Expr::Col(c) = e else {
                        return Err(Error::parse(
                            "non-aggregate select item must be a grouping column",
                        ));
                    };
                    if !group_by.contains(&c) {
                        return Err(Error::parse(format!("column {c} is not in GROUP BY")));
                    }
                    group_out.push(c);
                    let name = alias.clone().unwrap_or_else(|| display_name(ast, c));
                    outputs.push((name, c));
                }
                Item::Agg(func, arg, alias) => {
                    let arg_col = match arg {
                        None => None,
                        Some(ast) => match self.resolve(ast, scope, outer)? {
                            Expr::Col(c) => Some(c),
                            other => {
                                return Err(Error::parse(format!(
                                    "aggregate arguments must be bare columns, got {other}"
                                )))
                            }
                        },
                    };
                    let out = self.output_id(alias);
                    let name = alias.clone().unwrap_or_else(|| format!("c{}", out.0));
                    aggs.push(AggCall::new(*func, arg_col, out));
                    outputs.push((name, out));
                }
            }
        }
        let _ = group_out;
        Ok((LogicalTree::gbagg(tree, group_by, aggs), outputs))
    }

    fn output_id(&mut self, alias: &Option<String>) -> ColId {
        alias
            .as_deref()
            .and_then(parse_col_alias)
            .unwrap_or_else(|| self.ids.fresh())
    }

    // ---- Expression grammar ----
    // expr := and_expr (OR and_expr)*
    // and_expr := not_expr (AND not_expr)*
    // not_expr := [NOT] cmp
    // cmp := add ((= | <> | < | <= | > | >=) add)? (IS [NOT] NULL)?
    // add := mul ((+|-) mul)*
    // mul := primary (* primary)*
    // primary := literal | ident[.ident] | ( expr )

    fn parse_expr(&mut self) -> Result<Ast> {
        let mut e = self.parse_expr_no_and()?;
        // OR binds looser than AND; parse_expr_no_and already handles AND.
        while self.peek().is_kw("OR") {
            self.bump();
            let rhs = self.parse_expr_no_and()?;
            e = Ast::Bin(BinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    /// AND-level expression (no top-level OR is produced above this point;
    /// OR inside parentheses is fine).
    fn parse_expr_no_and(&mut self) -> Result<Ast> {
        let mut e = self.parse_not()?;
        while self.peek().is_kw("AND") && !self.peek2().is_kw("EXISTS") {
            // Leave `AND [NOT] EXISTS` to the WHERE-level splitter.
            let save = self.pos;
            self.bump();
            if self.peek().is_kw("NOT") && self.peek2().is_kw("EXISTS") {
                self.pos = save;
                break;
            }
            let rhs = self.parse_not()?;
            e = Ast::Bin(BinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_not(&mut self) -> Result<Ast> {
        if self.peek().is_kw("NOT") && !self.peek2().is_kw("EXISTS") {
            self.bump();
            Ok(Ast::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Ast> {
        let mut e = self.parse_add()?;
        for (sym, op) in [
            ("=", BinOp::Eq),
            ("<>", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.peek().is_symbol(sym) {
                self.bump();
                let rhs = self.parse_add()?;
                e = Ast::Bin(op, Box::new(e), Box::new(rhs));
                break;
            }
        }
        if self.peek().is_kw("IS") {
            self.bump();
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            e = Ast::IsNull(Box::new(e), negated);
        }
        Ok(e)
    }

    fn parse_add(&mut self) -> Result<Ast> {
        let mut e = self.parse_mul()?;
        loop {
            let op = if self.peek().is_symbol("+") {
                BinOp::Add
            } else if self.peek().is_symbol("-") {
                BinOp::Sub
            } else {
                break;
            };
            self.bump();
            let rhs = self.parse_mul()?;
            e = Ast::Bin(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_mul(&mut self) -> Result<Ast> {
        let mut e = self.parse_primary()?;
        while self.peek().is_symbol("*") {
            self.bump();
            let rhs = self.parse_primary()?;
            e = Ast::Bin(BinOp::Mul, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Ast> {
        match self.bump() {
            Token::Number(n) => Ok(Ast::Lit(Value::Int(n))),
            Token::Str(s) => Ok(Ast::Lit(Value::Str(s))),
            Token::Symbol("-") => match self.bump() {
                Token::Number(n) => Ok(Ast::Lit(Value::Int(-n))),
                other => Err(Error::parse(format!("bad negative literal {other:?}"))),
            },
            Token::Symbol("(") => {
                let e = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Token::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Ast::Lit(Value::Null)),
            Token::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Ast::Lit(Value::Bool(true))),
            Token::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Ast::Lit(Value::Bool(false))),
            Token::Ident(q) if self.peek().is_symbol(".") => {
                self.bump();
                let name = self.expect_ident()?;
                Ok(Ast::Ident(Some(q), name))
            }
            Token::Ident(name) => Ok(Ast::Ident(None, name)),
            other => Err(Error::parse(format!("unexpected token {other:?}"))),
        }
    }

    // ---- Name resolution ----

    fn resolve(&self, ast: &Ast, scope: &Scope, outer: &Scope) -> Result<Expr> {
        match ast {
            Ast::Lit(v) => Ok(Expr::Lit(v.clone())),
            Ast::Bin(op, l, r) => Ok(Expr::bin(
                *op,
                self.resolve(l, scope, outer)?,
                self.resolve(r, scope, outer)?,
            )),
            Ast::Not(e) => Ok(Expr::not(self.resolve(e, scope, outer)?)),
            Ast::IsNull(e, negated) => {
                let inner = Expr::is_null(self.resolve(e, scope, outer)?);
                Ok(if *negated { Expr::not(inner) } else { inner })
            }
            Ast::Ident(qualifier, name) => self
                .resolve_ident(qualifier.as_deref(), name, scope)
                .or_else(|_| self.resolve_ident(qualifier.as_deref(), name, outer)),
        }
    }

    fn resolve_ident(&self, qualifier: Option<&str>, name: &str, scope: &Scope) -> Result<Expr> {
        let matches: Vec<&ScopeCol> = scope
            .iter()
            .filter(|c| {
                c.name.eq_ignore_ascii_case(name)
                    && qualifier.is_none_or(|q| {
                        c.qualifier
                            .as_deref()
                            .is_some_and(|cq| cq.eq_ignore_ascii_case(q))
                    })
            })
            .collect();
        match matches.len() {
            1 => Ok(Expr::col(matches[0].id)),
            0 => {
                // `c<N>` references resolve positionally by pinned id even
                // when the producing select aliased it in an inner scope.
                if qualifier.is_none() {
                    if let Some(id) = parse_col_alias(name) {
                        if scope.iter().any(|c| c.id == id) {
                            return Ok(Expr::col(id));
                        }
                    }
                }
                Err(Error::parse(format!("unknown column '{name}'")))
            }
            _ => Err(Error::parse(format!("ambiguous column '{name}'"))),
        }
    }
}

/// If `tree` is a projection whose every output is a bare column reference,
/// returns its child plus the referenced source ids (in output order);
/// otherwise returns the tree unchanged.
fn unwrap_pure_rename(tree: LogicalTree) -> (LogicalTree, Option<Vec<ColId>>) {
    let srcs: Option<Vec<ColId>> = match &tree.op {
        ruletest_logical::Operator::Project { outputs } => outputs
            .iter()
            .map(|(_, e)| match e {
                Expr::Col(c) => Some(*c),
                _ => None,
            })
            .collect(),
        _ => None,
    };
    match srcs {
        // A childless Project is malformed; leave it for schema
        // validation to reject instead of panicking here.
        Some(srcs) if !tree.children.is_empty() => {
            let mut children = tree.children;
            (children.remove(0), Some(srcs))
        }
        _ => (tree, None),
    }
}

fn display_name(ast: &Ast, id: ColId) -> String {
    match ast {
        Ast::Ident(_, name) => name.clone(),
        _ => format!("c{}", id.0),
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const KW: &[&str] = &[
        "WHERE", "GROUP", "ORDER", "LIMIT", "UNION", "JOIN", "INNER", "LEFT", "RIGHT", "FULL",
        "CROSS", "ON", "AND", "OR", "AS", "EXISTS", "NOT", "SELECT", "FROM", "BY",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_logical::{derive_schema, Operator};
    use ruletest_storage::tpch_catalog;

    fn parse(sql: &str) -> LogicalTree {
        let cat = tpch_catalog();
        let tree = parse_sql(&cat, sql).unwrap();
        derive_schema(&cat, &tree).expect("parsed tree must validate");
        tree
    }

    #[test]
    fn simple_catalog_select() {
        let t = parse("SELECT r_name FROM region WHERE r_regionkey = 1");
        assert!(matches!(t.op, Operator::Project { .. }));
        assert!(matches!(t.children[0].op, Operator::Select { .. }));
    }

    #[test]
    fn star_select_is_passthrough() {
        let t = parse("SELECT * FROM region WHERE r_regionkey = 1");
        assert!(matches!(t.op, Operator::Select { .. }));
        assert!(matches!(t.children[0].op, Operator::Get { .. }));
    }

    #[test]
    fn joins_with_aliases() {
        let t =
            parse("SELECT n.n_name FROM nation n JOIN region r ON n.n_regionkey = r.r_regionkey");
        assert!(matches!(t.op, Operator::Project { .. }));
        let join = &t.children[0];
        assert_eq!(join.op.join_kind(), Some(JoinKind::Inner));
    }

    #[test]
    fn outer_join_kinds() {
        for (sql, kind) in [
            ("LEFT JOIN", JoinKind::LeftOuter),
            ("LEFT OUTER JOIN", JoinKind::LeftOuter),
            ("RIGHT JOIN", JoinKind::RightOuter),
            ("FULL OUTER JOIN", JoinKind::FullOuter),
        ] {
            let t = parse(&format!(
                "SELECT * FROM nation n {sql} region r ON n.n_regionkey = r.r_regionkey"
            ));
            assert_eq!(t.op.join_kind(), Some(kind), "{sql}");
        }
    }

    #[test]
    fn cross_join() {
        let t = parse("SELECT * FROM nation CROSS JOIN region");
        assert_eq!(t.op.join_kind(), Some(JoinKind::Inner));
        if let Operator::Join { predicate, .. } = &t.op {
            assert!(predicate.is_true_lit());
        }
    }

    #[test]
    fn exists_becomes_semi_join() {
        let t = parse(
            "SELECT * FROM nation n WHERE EXISTS (SELECT 1 FROM region r \
             WHERE r.r_regionkey = n.n_regionkey)",
        );
        assert_eq!(t.op.join_kind(), Some(JoinKind::LeftSemi));
    }

    #[test]
    fn not_exists_becomes_anti_join_with_residual_where() {
        let t = parse(
            "SELECT * FROM nation n WHERE n_nationkey > 2 AND NOT EXISTS \
             (SELECT 1 FROM region r WHERE r.r_regionkey = n.n_regionkey)",
        );
        // WHERE predicate applies above the anti join.
        assert!(matches!(t.op, Operator::Select { .. }));
        assert_eq!(t.children[0].op.join_kind(), Some(JoinKind::LeftAnti));
    }

    #[test]
    fn group_by_with_aggregates() {
        let t = parse(
            "SELECT s_nationkey, COUNT(*) AS cnt, MAX(s_acctbal) AS mx \
             FROM supplier GROUP BY s_nationkey",
        );
        let Operator::GbAgg { group_by, aggs } = &t.op else {
            panic!("expected GbAgg, got {}", t.op.label());
        };
        assert_eq!(group_by.len(), 1);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].func, AggFunc::CountStar);
        assert_eq!(aggs[1].func, AggFunc::Max);
    }

    #[test]
    fn scalar_aggregate() {
        let t = parse("SELECT COUNT(*) AS n FROM lineitem");
        let Operator::GbAgg { group_by, aggs } = &t.op else {
            panic!();
        };
        assert!(group_by.is_empty());
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn union_all_and_union_distinct() {
        let t = parse("SELECT r_name FROM region UNION ALL SELECT n_name FROM nation");
        assert!(matches!(t.op, Operator::UnionAll { .. }));
        let t = parse("SELECT r_name FROM region UNION SELECT n_name FROM nation");
        assert!(matches!(t.op, Operator::Distinct));
        assert!(matches!(t.children[0].op, Operator::UnionAll { .. }));
    }

    #[test]
    fn order_by_and_limit() {
        let t = parse("SELECT * FROM region ORDER BY r_name DESC");
        assert!(matches!(t.op, Operator::Sort { .. }));
        let t = parse("SELECT * FROM region ORDER BY r_name LIMIT 2");
        let Operator::Top { n, keys } = &t.op else {
            panic!();
        };
        assert_eq!(*n, 2);
        assert_eq!(keys.len(), 1);
        let t = parse("SELECT * FROM region LIMIT 3");
        assert!(matches!(t.op, Operator::Top { .. }));
    }

    #[test]
    fn pinned_column_aliases_round_trip_get() {
        let t = parse("SELECT r_regionkey AS c7, r_name AS c9 FROM region");
        let Operator::Get { cols, .. } = &t.op else {
            panic!("identity rename must collapse into the Get");
        };
        assert_eq!(cols, &vec![ColId(7), ColId(9)]);
    }

    #[test]
    fn derived_tables_nest() {
        let t = parse(
            "SELECT * FROM (SELECT r_regionkey AS c0, r_name AS c1 FROM region) t0 \
             WHERE (c0 = 1)",
        );
        assert!(matches!(t.op, Operator::Select { .. }));
        assert!(matches!(t.children[0].op, Operator::Get { .. }));
    }

    #[test]
    fn parse_errors_are_reported() {
        let cat = tpch_catalog();
        assert!(parse_sql(&cat, "SELECT FROM region").is_err());
        assert!(parse_sql(&cat, "SELECT * FROM nosuchtable").is_err());
        assert!(parse_sql(&cat, "SELECT r_name FROM region WHERE").is_err());
        assert!(parse_sql(&cat, "SELECT nope FROM region").is_err());
        assert!(parse_sql(&cat, "SELECT * FROM region extra garbage ,").is_err());
    }

    #[test]
    fn ambiguous_column_errors() {
        let cat = tpch_catalog();
        let err = parse_sql(
            &cat,
            "SELECT n_name FROM nation a JOIN nation b ON a.n_nationkey = b.n_nationkey",
        );
        assert!(err.is_err());
    }

    #[test]
    fn arithmetic_and_precedence() {
        let t = parse("SELECT p_size + 2 * 3 AS x FROM part WHERE p_size * 2 > 10 - 1");
        assert!(matches!(t.op, Operator::Project { .. }));
        let Operator::Project { outputs } = &t.op else {
            panic!();
        };
        // + binds looser than *
        assert!(outputs[0].1.to_string().contains("(2 * 3)"));
    }

    #[test]
    fn or_and_not_and_is_null() {
        let t = parse(
            "SELECT * FROM supplier WHERE s_acctbal IS NULL AND s_suppkey > 1 \
             OR s_acctbal IS NOT NULL",
        );
        assert!(matches!(t.op, Operator::Select { .. }));
    }
}
