//! SQL tokenizer.

use ruletest_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched
    /// case-insensitively; identifiers keep their original case).
    Ident(String),
    Number(i64),
    Str(String),
    /// `= <> < <= > >= + - * ( ) , .`
    Symbol(&'static str),
    Eof,
}

impl Token {
    /// True iff this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn is_symbol(&self, sym: &str) -> bool {
        matches!(self, Token::Symbol(s) if *s == sym)
    }
}

/// Tokenizes SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token::Ident(input[start..i].to_string()));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = input[start..i]
                .parse()
                .map_err(|_| Error::parse(format!("bad number at byte {start}")))?;
            out.push(Token::Number(n));
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(Error::parse("unterminated string literal"));
                }
                if bytes[i] == b'\'' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(bytes[i] as char);
                    i += 1;
                }
            }
            out.push(Token::Str(s));
        } else {
            let two = if i + 1 < bytes.len() {
                &input[i..i + 2]
            } else {
                ""
            };
            let sym: &'static str = match two {
                "<=" => "<=",
                ">=" => ">=",
                "<>" => "<>",
                _ => match c {
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    other => {
                        return Err(Error::parse(format!(
                            "unexpected character '{other}' at byte {i}"
                        )))
                    }
                },
            };
            i += sym.len();
            out.push(Token::Symbol(sym));
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_mixed_sql() {
        let toks = tokenize("SELECT a, b FROM t WHERE x <= 10 AND y = 'it''s'").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.iter().any(|t| t.is_symbol("<=")));
        assert!(toks.contains(&Token::Number(10)));
        assert!(toks.contains(&Token::Str("it's".to_string())));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select SeLeCt SELECT").unwrap();
        assert!(toks[..3].iter().all(|t| t.is_kw("SELECT")));
    }

    #[test]
    fn two_char_symbols_win_over_one() {
        let toks = tokenize("a<>b<=c>=d<e>f").unwrap();
        let syms: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["<>", "<=", ">=", "<", ">"]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn negative_numbers_are_minus_then_number() {
        let toks = tokenize("-5").unwrap();
        assert!(toks[0].is_symbol("-"));
        assert_eq!(toks[1], Token::Number(5));
    }
}
