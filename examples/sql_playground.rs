//! SQL playground: parse hand-written SQL against the TPC-H catalog,
//! optimize it, explain the plan, execute it, and show which
//! transformation rules fired.
//!
//! Run with: `cargo run --release --example sql_playground`
//! or pass your own statement:
//! `cargo run --release --example sql_playground -- "SELECT r_name FROM region"`

use ruletest::core::{Framework, FrameworkConfig};
use ruletest::executor::execute;
use ruletest::sql::parse_sql;

fn main() {
    let fw = Framework::new(&FrameworkConfig::default()).expect("framework");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        vec![
            "SELECT n_name, COUNT(*) AS suppliers, MAX(s_acctbal) AS best \
             FROM supplier s JOIN nation n ON s.s_nationkey = n.n_nationkey \
             WHERE s_acctbal > 0 GROUP BY n_name ORDER BY suppliers DESC LIMIT 5"
                .into(),
            "SELECT c_name FROM customer c WHERE NOT EXISTS \
             (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)"
                .into(),
            "SELECT r_name FROM region LEFT OUTER JOIN nation \
             ON r_regionkey = n_regionkey WHERE n_name = 'NATION_03'"
                .into(),
        ]
    } else {
        vec![args.join(" ")]
    };

    for sql in queries {
        println!("SQL> {sql}\n");
        let tree = match parse_sql(&fw.db.catalog, &sql) {
            Ok(t) => t,
            Err(e) => {
                println!("  parse error: {e}\n");
                continue;
            }
        };
        println!("-- logical tree --\n{}", tree.explain());
        let res = match fw.optimizer.optimize(&tree) {
            Ok(r) => r,
            Err(e) => {
                println!("  optimizer error: {e}\n");
                continue;
            }
        };
        println!(
            "-- physical plan (cost {:.1}) --\n{}",
            res.cost,
            res.plan.explain()
        );
        let fired: Vec<&str> = res
            .rule_set
            .iter()
            .map(|r| fw.optimizer.rule(*r).name)
            .collect();
        println!("-- rules exercised --\n  {}\n", fired.join(", "));
        match execute(&fw.db, &res.plan) {
            Ok(rows) => {
                println!("-- results ({} rows, first 10) --", rows.len());
                for row in rows.iter().take(10) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("  ({})", cells.join(", "));
                }
            }
            Err(e) => println!("  execution error: {e}"),
        }
        println!("{}", "=".repeat(72));
    }
}
