//! A complete correctness-testing campaign (§2.3 + §4 + §5):
//!
//! 1. Generate a test suite (k queries per rule).
//! 2. Build the bipartite graph and compress it with BASELINE, SMC,
//!    and TOPK; compare estimated execution costs.
//! 3. Execute the compressed suite: every rule validated on k queries by
//!    comparing `Plan(q)` and `Plan(q, ¬{r})` results.
//! 4. Re-run against an optimizer with an injected bug to show the
//!    pipeline catching it.
//!
//! Run with: `cargo run --release --example correctness_audit`

use ruletest::core::compress::{baseline, smc, topk, Instance};
use ruletest::core::correctness::execute_solution;
use ruletest::core::faults::{buggy_optimizer, Fault};
use ruletest::core::{
    build_graph, generate_suite, singleton_targets, Framework, FrameworkConfig, GenConfig, Strategy,
};
use ruletest::executor::ExecConfig;
use ruletest::storage::{tpch_database, TpchConfig};
use std::sync::Arc;

fn main() {
    let fw = Framework::new(&FrameworkConfig::default()).expect("framework");
    let n = 8;
    let k = 3;
    println!("== generating a test suite: {n} rules x k={k} queries ==");
    let suite = generate_suite(
        &fw,
        singleton_targets(&fw, n),
        k,
        Strategy::Pattern,
        &GenConfig {
            seed: 0xA0D17,
            pad_ops: 2,
            ..Default::default()
        },
    )
    .expect("suite");
    println!("{} queries generated\n", suite.queries.len());

    println!("== bipartite graph (Figure 4) ==");
    let graph = build_graph(&fw, &suite).expect("graph");
    println!(
        "{} targets, {} queries, {} edges ({} optimizer calls)\n",
        graph.targets.len(),
        graph.node_cost.len(),
        graph.edges.len(),
        graph.optimizer_calls
    );

    let inst = Instance::from_graph(&graph);
    let solutions = [
        ("BASELINE", baseline(&inst).expect("baseline")),
        ("SMC", smc(&inst).expect("smc")),
        ("TOPK", topk(&inst).expect("topk")),
    ];
    println!("== compression (Figures 11–13) ==");
    for (name, sol) in &solutions {
        println!(
            "  {name:<9} estimated cost {:>12.1}  ({} distinct queries)",
            sol.total_cost(&inst),
            sol.used_queries().len()
        );
    }

    println!("\n== executing the TOPK-compressed suite ==");
    let report = execute_solution(&fw, &suite, &inst, &solutions[2].1, &ExecConfig::default())
        .expect("execution");
    println!(
        "  validations: {}, executions: {}, skipped (identical plans): {}, bugs: {}",
        report.validations,
        report.executions,
        report.skipped_identical,
        report.bugs.len()
    );
    assert!(report.passed(), "the shipped rules are correct");

    println!("\n== same pipeline against a sabotaged optimizer ==");
    let db = Arc::new(tpch_database(&TpchConfig::default()).expect("db"));
    let fault = Fault::OuterJoinSimplifyUnconditional;
    let buggy = Arc::new(buggy_optimizer(db, fault));
    let buggy_fw = Framework::with_optimizer(buggy.clone());
    let rule = buggy.rule_id(fault.rule_name()).expect("rule");
    for seed in [3u64, 11, 19, 27, 40] {
        let Ok(suite) = generate_suite(
            &buggy_fw,
            vec![ruletest::core::RuleTarget::Single(rule)],
            4,
            Strategy::Pattern,
            &GenConfig {
                seed,
                pad_ops: 1,
                max_trials: 100,
                ..Default::default()
            },
        ) else {
            continue;
        };
        let graph = build_graph(&buggy_fw, &suite).expect("graph");
        let inst = Instance::from_graph(&graph);
        let sol = topk(&inst).expect("topk");
        let report = execute_solution(&buggy_fw, &suite, &inst, &sol, &ExecConfig::default())
            .expect("execution");
        if !report.passed() {
            let bug = &report.bugs[0];
            println!("  BUG FOUND in rule '{}':", bug.target_label);
            println!("    query: {}", bug.sql);
            println!("    {}", bug.diff_summary);
            return;
        }
    }
    println!("  (no bug surfaced on these seeds — try more)");
}
