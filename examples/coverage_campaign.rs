//! A rule-coverage campaign (§3): generate test cases exercising every
//! exploration rule and a sample of rule pairs, comparing the stochastic
//! baseline with pattern-based generation — a miniature of Figures 8–9.
//!
//! Run with: `cargo run --release --example coverage_campaign`

use ruletest::core::{Framework, FrameworkConfig, GenConfig, Strategy};

fn main() {
    let fw = Framework::new(&FrameworkConfig::default()).expect("framework");
    let rules = fw.optimizer.exploration_rule_ids();

    println!("rule coverage over {} exploration rules\n", rules.len());
    println!("{:<32} {:>8} {:>8}", "rule", "RANDOM", "PATTERN");
    let (mut tot_r, mut tot_p) = (0, 0);
    for (i, rid) in rules.iter().enumerate() {
        let random = fw.find_query_for_rule(
            *rid,
            Strategy::Random,
            &GenConfig {
                seed: 0xC0DE + i as u64,
                max_trials: 1500,
                ..Default::default()
            },
        );
        let pattern = fw.find_query_for_rule(
            *rid,
            Strategy::Pattern,
            &GenConfig {
                seed: 0xBEEF + i as u64,
                ..Default::default()
            },
        );
        let r = random.map(|o| o.trials).unwrap_or(1500);
        let p = pattern.map(|o| o.trials).unwrap_or(500);
        tot_r += r;
        tot_p += p;
        println!("{:<32} {:>8} {:>8}", fw.optimizer.rule(*rid).name, r, p);
    }
    println!("{:<32} {:>8} {:>8}", "TOTAL", tot_r, tot_p);
    println!(
        "pattern-based generation used {:.1}x fewer trials\n",
        tot_r as f64 / tot_p as f64
    );

    println!("a sample of rule pairs (§3.2 pattern composition):");
    for (i, j) in [(0usize, 4usize), (6, 14), (12, 25), (27, 31)] {
        let pair = (rules[i], rules[j]);
        let label = format!(
            "{} + {}",
            fw.optimizer.rule(pair.0).name,
            fw.optimizer.rule(pair.1).name
        );
        match fw.find_query_for_pair(
            pair,
            Strategy::Pattern,
            &GenConfig {
                seed: 0xFEED + (i * 100 + j) as u64,
                max_trials: 120,
                ..Default::default()
            },
        ) {
            Ok(out) => println!(
                "  {label}: found in {} trials ({} ops)\n    {}",
                out.trials, out.ops, out.sql
            ),
            Err(e) => println!("  {label}: {e}"),
        }
    }
}
