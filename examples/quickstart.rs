//! Quickstart: the paper's §3.1 flow in ten lines.
//!
//! 1. Build the framework (test database + instrumented optimizer).
//! 2. Fetch a rule's pattern through the export API (XML, as in the paper).
//! 3. Generate a SQL query guaranteed to have exercised the rule.
//! 4. Cross-check with `RuleSet(q)` and look at the chosen plan.
//!
//! Run with: `cargo run --example quickstart`

use ruletest::core::{Framework, FrameworkConfig, GenConfig, Strategy};

fn main() {
    let fw = Framework::new(&FrameworkConfig::default()).expect("framework");
    let rule = fw
        .optimizer
        .rule_id("EagerGbAggPushBelowJoinLeft")
        .expect("rule exists");

    println!("== rule pattern (exported as XML, §3.1) ==");
    println!("{}", fw.optimizer.rule_pattern(rule).to_xml());
    println!(
        "precondition beyond the pattern: {}\n",
        fw.optimizer.rule(rule).precondition
    );

    let out = fw
        .find_query_for_rule(rule, Strategy::Pattern, &GenConfig::default())
        .expect("pattern generation");
    println!(
        "== generated query ({} trials, {} operators) ==",
        out.trials, out.ops
    );
    println!("{}\n", out.sql);

    let res = fw.optimizer.optimize(&out.query).expect("optimize");
    println!("== RuleSet(q): {} rules exercised ==", res.rule_set.len());
    for rid in &res.rule_set {
        println!("  {}", fw.optimizer.rule(*rid).name);
    }
    println!("\n== chosen plan (cost {:.1}) ==", res.cost);
    println!("{}", res.plan.explain());

    let rows = ruletest::executor::execute(&fw.db, &res.plan).expect("execute");
    println!("query returned {} rows", rows.len());
}
