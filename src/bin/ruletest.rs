//! `ruletest` — command-line front end for the rule-testing framework.
//!
//! ```text
//! ruletest rules                         list the optimizer's rule catalog
//! ruletest pattern <RULE>                print a rule's pattern as XML (§3.1 API)
//! ruletest gen <RULE> [opts]             generate a query exercising the rule
//! ruletest pair <RULE_A> <RULE_B> [opts] generate a query exercising a rule pair
//! ruletest relevant <RULE> [opts]        find a query where the rule changes the plan (§7)
//! ruletest dependency <R1> <R2> [opts]   find a query where R2 fires on R1's output (§7)
//! ruletest sql "<SELECT ...>"            parse, optimize, explain, and run SQL
//! ruletest audit [--rules N] [--k K]     compression + correctness campaign
//! ruletest impact [--rules N]            workload-level rule performance impact (§1's third dimension)
//! ruletest report <run-report.json>      summarize a --metrics-json run report (--check fails on dead instrumentation)
//!
//! common options: --seed N   --pad N   --random   --trials N   --threads N
//! telemetry:      --metrics-json PATH   --trace-out PATH
//! ```

use ruletest::cli::{self, Opts};
use ruletest::core::compress::{baseline, smc, topk, Instance};
use ruletest::core::correctness::execute_solution;
use ruletest::core::generate::dependency::find_dependency_query;
use ruletest::core::generate::relevant::find_relevant_query;
use ruletest::core::{
    build_graph, generate_suite, singleton_targets, Framework, FrameworkConfig, GenConfig, Strategy,
};
use ruletest::executor::{execute, ExecConfig};
use ruletest::optimizer::RuleKind;
use ruletest::sql::parse_sql;
use ruletest::telemetry::{RunReport, Telemetry};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let (cmd, opts) = match cli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cmd == "report" {
        // Pure file analysis: no framework (or test database) needed.
        return match run_report_cmd(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // --threads 0 (the default) means "one worker per core".
    let mut parallelism = ruletest::common::Parallelism::default();
    if opts.threads > 0 {
        parallelism.threads = opts.threads;
    }
    parallelism.seed = opts.seed;
    // Either telemetry output flag turns recording on; the event tracer is
    // only allocated when a trace is actually wanted.
    let telemetry = if opts.trace_out.is_some() {
        Telemetry::enabled()
    } else if opts.metrics_json.is_some() {
        Telemetry::metrics_only()
    } else {
        Telemetry::disabled()
    };
    let started = Instant::now();
    let fw = match Framework::new(&FrameworkConfig {
        parallelism,
        telemetry,
        ..Default::default()
    }) {
        Ok(fw) => fw,
        Err(e) => {
            eprintln!("framework construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let strategy = if opts.random {
        Strategy::Random
    } else {
        Strategy::Pattern
    };
    let gen_cfg = GenConfig {
        seed: opts.seed,
        pad_ops: opts.pad,
        max_trials: opts.trials,
        ..Default::default()
    };
    let rule_by_name = |name: &str| {
        fw.optimizer
            .rule_id(name)
            .ok_or_else(|| format!("unknown rule '{name}' — see `ruletest rules` for the catalog"))
    };

    let result: Result<(), String> = match cmd.as_str() {
        "rules" => {
            println!("{:<32} {:<15} precondition", "rule", "kind");
            for i in 0..fw.optimizer.num_rules() {
                let rid = ruletest::common::RuleId(i as u16);
                let rule = fw.optimizer.rule(rid);
                let kind = match rule.kind {
                    RuleKind::Exploration => "exploration",
                    RuleKind::Implementation => "implementation",
                };
                println!("{:<32} {:<15} {}", rule.name, kind, rule.precondition);
            }
            Ok(())
        }
        "pattern" => opts
            .positional
            .first()
            .ok_or_else(|| "usage: ruletest pattern <RULE>".to_string())
            .and_then(|name| rule_by_name(name))
            .map(|rid| print!("{}", fw.optimizer.rule_pattern(rid).to_xml())),
        "gen" => opts
            .positional
            .first()
            .ok_or_else(|| "usage: ruletest gen <RULE>".to_string())
            .and_then(|name| rule_by_name(name))
            .and_then(|rid| {
                fw.find_query_for_rule(rid, strategy, &gen_cfg)
                    .map_err(|e| e.to_string())
            })
            .map(|out| {
                println!(
                    "-- found in {} trials ({} operators, {:.1}ms)",
                    out.trials,
                    out.ops,
                    out.elapsed.as_secs_f64() * 1e3
                );
                println!("{}", out.sql);
            }),
        "pair" => {
            if opts.positional.len() < 2 {
                Err("usage: ruletest pair <RULE_A> <RULE_B>".to_string())
            } else {
                rule_by_name(&opts.positional[0])
                    .and_then(|a| rule_by_name(&opts.positional[1]).map(|b| (a, b)))
                    .and_then(|pair| {
                        fw.find_query_for_pair(pair, strategy, &gen_cfg)
                            .map_err(|e| e.to_string())
                    })
                    .map(|out| {
                        println!("-- found in {} trials ({} operators)", out.trials, out.ops);
                        println!("{}", out.sql);
                    })
            }
        }
        "relevant" => opts
            .positional
            .first()
            .ok_or_else(|| "usage: ruletest relevant <RULE>".to_string())
            .and_then(|name| rule_by_name(name))
            .and_then(|rid| {
                find_relevant_query(&fw, rid, strategy, &gen_cfg).map_err(|e| e.to_string())
            })
            .map(|(out, discarded)| {
                println!(
                    "-- relevant query found ({} trials, {} exercising-but-irrelevant discarded)",
                    out.trials, discarded
                );
                println!("{}", out.sql);
            }),
        "dependency" => {
            if opts.positional.len() < 2 {
                Err("usage: ruletest dependency <RULE_A> <RULE_B>".to_string())
            } else {
                rule_by_name(&opts.positional[0])
                    .and_then(|a| rule_by_name(&opts.positional[1]).map(|b| (a, b)))
                    .and_then(|(a, b)| {
                        find_dependency_query(&fw, a, b, strategy, &gen_cfg)
                            .map_err(|e| e.to_string())
                    })
                    .map(|(out, discarded)| {
                        println!(
                            "-- dependency witness found ({} trials, {} co-occurring-only discarded)",
                            out.trials, discarded
                        );
                        println!("{}", out.sql);
                    })
            }
        }
        "sql" => opts
            .positional
            .first()
            .ok_or_else(|| "usage: ruletest sql \"SELECT ...\"".to_string())
            .and_then(|text| run_sql(&fw, text)),
        "audit" => run_audit(&fw, &opts),
        "impact" => run_impact(&fw, &opts),
        _ => {
            eprintln!(
                "usage: ruletest <rules|pattern|gen|pair|relevant|sql|audit|impact|report> [options]\n\
                 see the module docs (`ruletest --help` equivalent) in src/bin/ruletest.rs"
            );
            Ok(())
        }
    };
    // Telemetry outputs are written even when the command failed — a
    // failing campaign's metrics are exactly what one wants to look at.
    let result = result.and(write_telemetry_outputs(&fw, &opts, started));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Writes the `--metrics-json` run report and the `--trace-out` JSONL
/// trace, when requested.
fn write_telemetry_outputs(fw: &Framework, opts: &Opts, started: Instant) -> Result<(), String> {
    if let Some(path) = &opts.metrics_json {
        let mut report = fw.run_report();
        report.wall_seconds = started.elapsed().as_secs_f64();
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote run report to {path}");
    }
    if let Some(path) = &opts.trace_out {
        let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        let mut out = std::io::BufWriter::new(file);
        fw.telemetry
            .export_trace(&mut out)
            .map_err(|e| format!("writing {path}: {e}"))?;
        let stats = fw.telemetry.trace_stats();
        eprintln!(
            "wrote {} trace events to {path} ({} dropped by the ring buffer)",
            stats.recorded.saturating_sub(stats.dropped),
            stats.dropped
        );
    }
    Ok(())
}

/// `ruletest report <run-report.json> [--check]`.
fn run_report_cmd(opts: &Opts) -> Result<(), String> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| "usage: ruletest report <run-report.json> [--check]".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report = RunReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", report.summary());
    if opts.check {
        report.check().map_err(|e| format!("check failed: {e}"))?;
        println!("check: ok");
    }
    Ok(())
}

fn run_sql(fw: &Framework, text: &str) -> Result<(), String> {
    let tree = parse_sql(&fw.db.catalog, text).map_err(|e| e.to_string())?;
    let res = fw.optimizer.optimize(&tree).map_err(|e| e.to_string())?;
    println!("-- plan (cost {:.1}) --\n{}", res.cost, res.plan.explain());
    let fired: Vec<&str> = res
        .rule_set
        .iter()
        .map(|r| fw.optimizer.rule(*r).name)
        .collect();
    println!("-- rules exercised: {}", fired.join(", "));
    let rows = execute(&fw.db, &res.plan).map_err(|e| e.to_string())?;
    println!("-- {} rows --", rows.len());
    for row in rows.iter().take(20) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("({})", cells.join(", "));
    }
    if rows.len() > 20 {
        println!("... {} more", rows.len() - 20);
    }
    Ok(())
}

fn run_impact(fw: &Framework, opts: &Opts) -> Result<(), String> {
    use ruletest::core::generate::random::random_tree;
    let mut rng = ruletest::common::Rng::new(opts.seed);
    let workload: Vec<_> = (0..20)
        .map(|_| {
            let mut ids = ruletest::logical::IdGen::new();
            random_tree(&fw.db, &mut rng, &mut ids, 7).tree
        })
        .collect();
    let report = ruletest::core::rule_impact(fw, &workload).map_err(|e| e.to_string())?;
    println!(
        "{:<32} {:>9} {:>8} {:>10}",
        "rule", "exercised", "relevant", "inflation"
    );
    for r in report.iter().take(opts.rules.max(10)) {
        println!(
            "{:<32} {:>9} {:>8} {:>9.2}x",
            r.rule_name,
            r.exercised,
            r.relevant,
            r.inflation()
        );
    }
    Ok(())
}

fn run_audit(fw: &Framework, opts: &Opts) -> Result<(), String> {
    println!(
        "auditing {} rules with k={} queries each...",
        opts.rules, opts.k
    );
    let suite = generate_suite(
        fw,
        singleton_targets(fw, opts.rules),
        opts.k,
        Strategy::Pattern,
        &GenConfig {
            seed: opts.seed,
            pad_ops: 2,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let graph = build_graph(fw, &suite).map_err(|e| e.to_string())?;
    let inst = Instance::from_graph(&graph);
    println!(
        "suite: {} queries, {} edges ({} optimizer calls)",
        suite.queries.len(),
        graph.edges.len(),
        graph.optimizer_calls
    );
    let b = baseline(&inst).map_err(|e| e.to_string())?;
    let s = smc(&inst).map_err(|e| e.to_string())?;
    let t = topk(&inst).map_err(|e| e.to_string())?;
    println!("compression (estimated execution cost):");
    println!("  BASELINE {:>12.1}", b.total_cost(&inst));
    println!("  SMC      {:>12.1}", s.total_cost(&inst));
    println!("  TOPK     {:>12.1}", t.total_cost(&inst));
    let report = execute_solution(fw, &suite, &inst, &t, &ExecConfig::default())
        .map_err(|e| e.to_string())?;
    println!(
        "executed TOPK suite: {} validations, {} executions, {} skipped-identical, {} bugs",
        report.validations,
        report.executions,
        report.skipped_identical,
        report.bugs.len()
    );
    for bug in &report.bugs {
        println!(
            "BUG in {}: {}\n  {}",
            bug.target_label, bug.diff_summary, bug.sql
        );
    }
    if report.passed() {
        println!("all rules validated clean.");
        Ok(())
    } else {
        Err(format!("{} correctness bugs found", report.bugs.len()))
    }
}
