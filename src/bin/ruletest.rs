//! `ruletest` — command-line front end for the rule-testing framework.
//!
//! ```text
//! ruletest rules                         list the optimizer's rule catalog
//! ruletest pattern <RULE>                print a rule's pattern as XML (§3.1 API)
//! ruletest gen <RULE> [opts]             generate a query exercising the rule
//! ruletest pair <RULE_A> <RULE_B> [opts] generate a query exercising a rule pair
//! ruletest relevant <RULE> [opts]        find a query where the rule changes the plan (§7)
//! ruletest dependency <R1> <R2> [opts]   find a query where R2 fires on R1's output (§7)
//! ruletest sql "<SELECT ...>"            parse, optimize, explain, and run SQL
//! ruletest audit [--rules N] [--k K]     compression + correctness campaign
//! ruletest impact [--rules N]            workload-level rule performance impact (§1's third dimension)
//! ruletest report <run-report.json>      summarize a --metrics-json run report (--check fails on dead instrumentation)
//! ruletest diff <BASE.json> <CUR.json>    compare two run reports; exits nonzero on regression (--threshold-pct N)
//! ruletest triage [--fault F] [--out P]  campaign + bug triage: minimize, dedup, emit repro bundles
//! ruletest triage replay <bugs.jsonl>    re-execute bundles in a fresh process (--check fails unless all confirm)
//! ruletest lint [--fault F] [--json P]   static rule audit: catch rule bugs without executing queries
//! ruletest lint --prove                  also run the symbolic equivalence prover
//! ruletest prove [--rule R] [--json P]   prove catalog rules equivalence-preserving algebraically
//! ruletest prove --fault MUTANT          inject a mutant; fail unless proved inequivalent
//! ruletest mutate [--class C] [--sample N] [--json P]  rule-mutation campaign: measure fault-detection power
//! ruletest mutate --list                 print the mutant catalog
//!
//! common options: --seed N   --pad N   --random   --trials N   --threads N   --scale N
//! telemetry:      --metrics-json PATH   --trace-out PATH   --profile-folded PATH
//! robustness:     --no-supervise   --deadline-ms N   --chaos-seed N   --chaos-plan SPEC
//! ```
//!
//! `audit` runs supervised by default: every optimizer invocation and
//! executor run is sandboxed, failures land in a crash quarantine
//! (persisted alongside `--cache-dir` checkpoints, skipped on
//! `--resume`), and quarantined inputs with SQL witnesses are minimized
//! into crash repro bundles. `--chaos-seed` / `--chaos-plan` install a
//! deterministic fault-injection plan to exercise exactly that path.

use ruletest::cli::{self, Opts};
use ruletest::core::compress::{baseline, smc, topk, Instance};
use ruletest::core::correctness::execute_solution;
use ruletest::core::faults::{buggy_optimizer, Fault};
use ruletest::core::generate::dependency::find_dependency_query;
use ruletest::core::generate::relevant::find_relevant_query;
use ruletest::core::{
    build_graph, final_persist, generate_suite, read_bundles, replay, run_checkpointed_campaign,
    singleton_targets, to_bundles, triage_report, write_bundles, CampaignParams, DbProfile,
    Framework, FrameworkConfig, GenConfig, RuleTarget, Strategy, TriageConfig,
};
use ruletest::executor::{execute, ExecConfig};
use ruletest::optimizer::{Optimizer, RuleKind};
use ruletest::sql::parse_sql;
use ruletest::storage::{tpch_database, TpchConfig};
use ruletest::telemetry::{diff_reports, Json, RunReport, Telemetry};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let (cmd, opts) = match cli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Chaos plans are process-global and must be in place before any
    // instrumented subsystem runs. `--chaos-plan` (explicit schedule)
    // wins over `--chaos-seed` (derived schedule).
    if let Err(e) = install_chaos_plan(&opts) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if cmd == "report" {
        // Pure file analysis: no framework (or test database) needed.
        return match run_report_cmd(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "diff" {
        // Pure file analysis: compares two saved run reports.
        return match run_diff_cmd(&opts) {
            Ok(regressed) => {
                if regressed {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "triage" {
        // Builds its own (possibly fault-injected, scaled) framework.
        return match run_triage(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "mutate" {
        // Builds one optimizer per mutant; no shared framework.
        return match run_mutate(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "lint" {
        // Purely static: no executor, no framework, no query runs.
        return match run_lint(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "prove" {
        // Purely symbolic: rowless database, no executor, no framework.
        return match run_prove(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // --threads 0 (the default) means "one worker per core".
    let mut parallelism = ruletest::common::Parallelism::default();
    if opts.threads > 0 {
        parallelism.threads = opts.threads;
    }
    parallelism.seed = opts.seed;
    // Either telemetry output flag turns recording on; the event tracer is
    // only allocated when a trace is actually wanted.
    let telemetry = if opts.trace_out.is_some() {
        Telemetry::enabled()
    } else if opts.metrics_json.is_some() || opts.profile_folded.is_some() {
        Telemetry::metrics_only()
    } else {
        Telemetry::disabled()
    };
    let started = Instant::now();
    let fw = match Framework::new(&FrameworkConfig {
        parallelism,
        telemetry,
        ..Default::default()
    }) {
        Ok(fw) => fw,
        Err(e) => {
            eprintln!("framework construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let strategy = if opts.random {
        Strategy::Random
    } else {
        Strategy::Pattern
    };
    let gen_cfg = GenConfig {
        seed: opts.seed,
        pad_ops: opts.pad,
        max_trials: opts.trials,
        ..Default::default()
    };
    let rule_by_name = |name: &str| {
        fw.optimizer
            .rule_id(name)
            .ok_or_else(|| format!("unknown rule '{name}' — see `ruletest rules` for the catalog"))
    };

    let result: Result<(), String> = match cmd.as_str() {
        "rules" => {
            println!("{:<32} {:<15} precondition", "rule", "kind");
            for i in 0..fw.optimizer.num_rules() {
                let rid = ruletest::common::RuleId(i as u16);
                let rule = fw.optimizer.rule(rid);
                let kind = match rule.kind {
                    RuleKind::Exploration => "exploration",
                    RuleKind::Implementation => "implementation",
                };
                println!("{:<32} {:<15} {}", rule.name, kind, rule.precondition);
            }
            Ok(())
        }
        "pattern" => opts
            .positional
            .first()
            .ok_or_else(|| "usage: ruletest pattern <RULE>".to_string())
            .and_then(|name| rule_by_name(name))
            .map(|rid| print!("{}", fw.optimizer.rule_pattern(rid).to_xml())),
        "gen" => opts
            .positional
            .first()
            .ok_or_else(|| "usage: ruletest gen <RULE>".to_string())
            .and_then(|name| rule_by_name(name))
            .and_then(|rid| {
                fw.find_query_for_rule(rid, strategy, &gen_cfg)
                    .map_err(|e| e.to_string())
            })
            .map(|out| {
                println!(
                    "-- found in {} trials ({} operators, {:.1}ms)",
                    out.trials,
                    out.ops,
                    out.elapsed.as_secs_f64() * 1e3
                );
                println!("{}", out.sql);
            }),
        "pair" => {
            if opts.positional.len() < 2 {
                Err("usage: ruletest pair <RULE_A> <RULE_B>".to_string())
            } else {
                rule_by_name(&opts.positional[0])
                    .and_then(|a| rule_by_name(&opts.positional[1]).map(|b| (a, b)))
                    .and_then(|pair| {
                        fw.find_query_for_pair(pair, strategy, &gen_cfg)
                            .map_err(|e| e.to_string())
                    })
                    .map(|out| {
                        println!("-- found in {} trials ({} operators)", out.trials, out.ops);
                        println!("{}", out.sql);
                    })
            }
        }
        "relevant" => opts
            .positional
            .first()
            .ok_or_else(|| "usage: ruletest relevant <RULE>".to_string())
            .and_then(|name| rule_by_name(name))
            .and_then(|rid| {
                find_relevant_query(&fw, rid, strategy, &gen_cfg).map_err(|e| e.to_string())
            })
            .map(|(out, discarded)| {
                println!(
                    "-- relevant query found ({} trials, {} exercising-but-irrelevant discarded)",
                    out.trials, discarded
                );
                println!("{}", out.sql);
            }),
        "dependency" => {
            if opts.positional.len() < 2 {
                Err("usage: ruletest dependency <RULE_A> <RULE_B>".to_string())
            } else {
                rule_by_name(&opts.positional[0])
                    .and_then(|a| rule_by_name(&opts.positional[1]).map(|b| (a, b)))
                    .and_then(|(a, b)| {
                        find_dependency_query(&fw, a, b, strategy, &gen_cfg)
                            .map_err(|e| e.to_string())
                    })
                    .map(|(out, discarded)| {
                        println!(
                            "-- dependency witness found ({} trials, {} co-occurring-only discarded)",
                            out.trials, discarded
                        );
                        println!("{}", out.sql);
                    })
            }
        }
        "sql" => opts
            .positional
            .first()
            .ok_or_else(|| "usage: ruletest sql \"SELECT ...\"".to_string())
            .and_then(|text| run_sql(&fw, text)),
        "audit" => run_audit(&fw, &opts),
        "impact" => run_impact(&fw, &opts),
        _ => {
            eprintln!(
                "usage: ruletest <rules|pattern|gen|pair|relevant|sql|audit|impact|report|diff|triage|lint|prove|mutate> [options]\n\
                 see the module docs (`ruletest --help` equivalent) in src/bin/ruletest.rs"
            );
            Ok(())
        }
    };
    // Telemetry outputs are written even when the command failed — a
    // failing campaign's metrics are exactly what one wants to look at.
    let result = result.and(write_telemetry_outputs(&fw, &opts, started));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Installs the `--chaos-plan` / `--chaos-seed` fault schedule, logging
/// the effective plan in replayable spec syntax.
fn install_chaos_plan(opts: &Opts) -> Result<(), String> {
    use ruletest::common::chaos;
    let plan = match (&opts.chaos_plan, opts.chaos_seed) {
        (Some(spec), _) => chaos::ChaosPlan::parse(spec).map_err(|e| e.to_string())?,
        (None, Some(seed)) => chaos::ChaosPlan::seeded(seed),
        (None, None) => return Ok(()),
    };
    eprintln!("chaos: installed plan {}", plan.to_spec());
    chaos::install(plan);
    Ok(())
}

/// Writes the `--metrics-json` run report and the `--trace-out` JSONL
/// trace, when requested.
fn write_telemetry_outputs(fw: &Framework, opts: &Opts, started: Instant) -> Result<(), String> {
    if let Some(path) = &opts.metrics_json {
        let mut report = fw.run_report();
        report.wall_seconds = started.elapsed().as_secs_f64();
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote run report to {path}");
    }
    if let Some(path) = &opts.trace_out {
        let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        let mut out = std::io::BufWriter::new(file);
        fw.telemetry
            .export_trace(&mut out)
            .map_err(|e| format!("writing {path}: {e}"))?;
        let stats = fw.telemetry.trace_stats();
        eprintln!(
            "wrote {} trace events to {path} ({} dropped by the ring buffer)",
            stats.recorded.saturating_sub(stats.dropped),
            stats.dropped
        );
    }
    if let Some(path) = &opts.profile_folded {
        let section = fw.telemetry.profile_section(&fw.rule_names());
        std::fs::write(path, section.folded()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} folded stack(s) to {path}", section.spans.len());
    }
    Ok(())
}

/// `ruletest report <run-report.json> [--check] [--profile-folded OUT]`.
fn run_report_cmd(opts: &Opts) -> Result<(), String> {
    let path = opts.positional.first().ok_or_else(|| {
        "usage: ruletest report <run-report.json> [--check] [--profile-folded OUT]".to_string()
    })?;
    let report = load_run_report(path)?;
    print!("{}", report.summary());
    if let Some(out) = &opts.profile_folded {
        std::fs::write(out, report.profile.folded()).map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "wrote {} folded stack(s) to {out}",
            report.profile.spans.len()
        );
    }
    if opts.check {
        report.check().map_err(|e| format!("check failed: {e}"))?;
        println!("check: ok");
    }
    Ok(())
}

/// Loads a `RunReport` from a JSON file — either a bare report (the
/// `--metrics-json` output) or a document embedding one under a
/// `run_report` key (the campaign bench's `BENCH_campaign.json`).
fn load_run_report(path: &str) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let report = doc.get("run_report").unwrap_or(&doc);
    RunReport::from_json_value(report).map_err(|e| format!("{path}: {e}"))
}

/// `ruletest diff <BASE.json> <CUR.json> [--threshold-pct N] [--json OUT]`.
/// Returns `Ok(true)` when the comparison regressed (nonzero exit).
fn run_diff_cmd(opts: &Opts) -> Result<bool, String> {
    let usage = "usage: ruletest diff <BASE.json> <CUR.json> [--threshold-pct N] [--json OUT]";
    let base_path = opts.positional.first().ok_or_else(|| usage.to_string())?;
    let cur_path = opts.positional.get(1).ok_or_else(|| usage.to_string())?;
    let base = load_run_report(base_path)?;
    let cur = load_run_report(cur_path)?;
    let threshold = opts.threshold_pct.unwrap_or(10);
    let diff = diff_reports(&base, &cur, threshold);
    print!("{}", diff.render_text());
    if let Some(out) = &opts.json {
        std::fs::write(out, diff.to_json().to_string_pretty())
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("diff: report written to {out}");
    }
    Ok(diff.regressed())
}

fn run_sql(fw: &Framework, text: &str) -> Result<(), String> {
    let tree = parse_sql(&fw.db.catalog, text).map_err(|e| e.to_string())?;
    let res = fw.optimizer.optimize(&tree).map_err(|e| e.to_string())?;
    println!("-- plan (cost {:.1}) --\n{}", res.cost, res.plan.explain());
    let fired: Vec<&str> = res
        .rule_set
        .iter()
        .map(|r| fw.optimizer.rule(*r).name)
        .collect();
    println!("-- rules exercised: {}", fired.join(", "));
    let rows = execute(&fw.db, &res.plan).map_err(|e| e.to_string())?;
    println!("-- {} rows --", rows.len());
    for row in rows.iter().take(20) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("({})", cells.join(", "));
    }
    if rows.len() > 20 {
        println!("... {} more", rows.len() - 20);
    }
    Ok(())
}

fn run_impact(fw: &Framework, opts: &Opts) -> Result<(), String> {
    use ruletest::core::generate::random::random_tree;
    let mut rng = ruletest::common::Rng::new(opts.seed);
    let workload: Vec<_> = (0..20)
        .map(|_| {
            let mut ids = ruletest::logical::IdGen::new();
            random_tree(&fw.db, &mut rng, &mut ids, 7).tree
        })
        .collect();
    let report = ruletest::core::rule_impact(fw, &workload).map_err(|e| e.to_string())?;
    println!(
        "{:<32} {:>9} {:>8} {:>10}",
        "rule", "exercised", "relevant", "inflation"
    );
    for r in report.iter().take(opts.rules.max(10)) {
        println!(
            "{:<32} {:>9} {:>8} {:>9.2}x",
            r.rule_name,
            r.exercised,
            r.relevant,
            r.inflation()
        );
    }
    Ok(())
}

fn run_audit(fw: &Framework, opts: &Opts) -> Result<(), String> {
    use ruletest::common::chaos;
    use ruletest::core::{
        crash_bundles, execute_solution_supervised, quarantine_summary,
        run_checkpointed_campaign_supervised, Quarantine,
    };
    let supervised = !opts.no_supervise;
    println!(
        "auditing {} rules with k={} queries each{}...",
        opts.rules,
        opts.k,
        if supervised { " (supervised)" } else { "" }
    );
    // The audit pipeline's generation parameters: `pad_ops: 2` pads each
    // pattern query a little so plans are non-trivial. They feed the
    // checkpoint identity, so an audit with different parameters never
    // resumes from this one's checkpoints.
    let params = CampaignParams {
        rules: opts.rules,
        k: opts.k,
        seed: opts.seed,
        pad_ops: 2,
        max_trials: GenConfig::default().max_trials,
    };
    let cache_dir = opts.cache_dir.as_deref().map(Path::new);
    if let Some(dir) = cache_dir {
        println!(
            "cache-dir: {}{}",
            dir.display(),
            if opts.resume { " (resume)" } else { "" }
        );
    }
    let mut quarantine = Quarantine::new();
    let run = if supervised {
        run_checkpointed_campaign_supervised(
            fw,
            &params,
            cache_dir,
            opts.resume,
            None,
            &mut quarantine,
        )
    } else {
        run_checkpointed_campaign(fw, &params, cache_dir, opts.resume, None)
    }
    .map_err(|e| e.to_string())?
    .expect("campaign ran without a stop hook");
    if !run.resumed.is_empty() {
        println!("resumed from checkpoint: {}", run.resumed.join("+"));
    }
    let (suite, graph) = (&run.suite, &run.graph);
    let inst = Instance::from_graph(graph);
    println!(
        "suite: {} queries, {} edges ({} optimizer calls)",
        suite.queries.len(),
        graph.edges.len(),
        graph.optimizer_calls
    );
    let b = baseline(&inst).map_err(|e| e.to_string())?;
    let s = smc(&inst).map_err(|e| e.to_string())?;
    let t = topk(&inst).map_err(|e| e.to_string())?;
    println!("compression (estimated execution cost):");
    println!("  BASELINE {:>12.1}", b.total_cost(&inst));
    println!("  SMC      {:>12.1}", s.total_cost(&inst));
    println!("  TOPK     {:>12.1}", t.total_cost(&inst));
    // `--deadline-ms` arms a cooperative per-execution deadline in the
    // executor's batch loops (re-armed per run, so it is not a fuse from
    // process start).
    let exec_cfg = ExecConfig {
        deadline: ruletest::common::Deadline::after_ms(opts.deadline_ms),
        ..ExecConfig::default()
    };
    let report = if supervised {
        execute_solution_supervised(fw, suite, &inst, &t, &exec_cfg, &mut quarantine)
    } else {
        execute_solution(fw, suite, &inst, &t, &exec_cfg)
    }
    .map_err(|e| e.to_string())?;
    // Persist the final quarantine (now including execution-stage
    // entries) so a later --resume skips every poisoned input.
    if let Some(store) = &run.store {
        if supervised {
            store
                .save_quarantine(&quarantine)
                .map_err(|e| format!("saving quarantine: {e}"))?;
        }
    }
    // Final cache save (no stage file): later runs with the same
    // cache-dir warm-start from everything this campaign computed.
    let persisted = final_persist(fw).map_err(|e| e.to_string())?;
    if cache_dir.is_some() {
        println!("cache: {persisted} invocation entries persisted");
    }
    println!(
        "executed TOPK suite: {} validations, {} executions, {} skipped-identical, {} skipped-unsupported, {} skipped-quarantined, {} bugs",
        report.validations,
        report.executions,
        report.skipped_identical,
        report.skipped_unsupported,
        report.skipped_quarantined,
        report.bugs.len()
    );
    if supervised && !quarantine.is_empty() {
        println!("{}", quarantine_summary(&quarantine));
        // Minimize crash witnesses into repro bundles: --out wins, a
        // cache-dir gets them as a campaign artifact, otherwise the
        // quarantine summary above is the record.
        let triage_cfg = TriageConfig {
            exec: exec_cfg.clone(),
            ..TriageConfig::default()
        };
        let bundles = crash_bundles(fw, params.seed, &quarantine, &triage_cfg);
        let bundle_path = opts
            .out
            .clone()
            .or_else(|| cache_dir.map(|d| d.join("crash_bundles.jsonl").display().to_string()));
        if let (Some(path), false) = (bundle_path, bundles.is_empty()) {
            let file = std::fs::File::create(&path).map_err(|e| format!("creating {path}: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            write_bundles(&mut w, &bundles).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {} crash repro bundle(s) to {path}", bundles.len());
        }
    }
    if chaos::enabled() {
        let s = chaos::stats();
        fw.telemetry
            .add(ruletest::telemetry::Counter::ChaosInjected, s.total());
        println!(
            "chaos: {} fault(s) injected ({} panics, {} stalls, {} budgets), {} quarantined",
            s.total(),
            s.panics,
            s.stalls,
            s.budgets,
            quarantine.len()
        );
    }
    for bug in &report.bugs {
        println!(
            "BUG in {}: {}\n  seed={} scale={} rule_mask=[{}]\n  {}",
            bug.target_label,
            bug.diff_summary,
            bug.seed,
            bug.scale,
            bug.rule_mask.join("+"),
            bug.sql
        );
    }
    if report.passed() {
        println!("all rules validated clean.");
        Ok(())
    } else {
        Err(format!("{} correctness bugs found", report.bugs.len()))
    }
}

/// Runs the static rule audit (`ruletest lint`): pattern-instantiated
/// corpora, sandboxed substitute checks, and the pattern-necessity
/// cross-check — no query is ever executed. Without `--fault` the command
/// fails when the catalog has violations; with `--fault F` the named
/// fault is injected and the command fails unless the audit catches it.
fn run_lint(opts: &Opts) -> Result<(), String> {
    let fault = match &opts.fault {
        Some(name) => Some(Fault::from_name(name).map_err(|e| e.to_string())?),
        None => None,
    };
    // Data scale is irrelevant to a static audit; only the catalog is read.
    let db = Arc::new(tpch_database(&TpchConfig::default()).map_err(|e| e.to_string())?);
    let optimizer = match fault {
        Some(f) => buggy_optimizer(db, f),
        None => Optimizer::new(db),
    };
    let started = Instant::now();
    let report = ruletest::lint::lint_rules(&optimizer).map_err(|e| e.to_string())?;
    print!("{}", report.render_text());
    println!("lint: finished in {:?}", started.elapsed());
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("lint: report written to {path}");
    }
    // --prove: also run the symbolic prover, over its own rowless
    // symbolic database (the concrete lint corpus needs the TPC-H
    // catalog; proofs do not). The same fault is re-injected so both
    // layers see the same catalog.
    let prove_failures = if opts.prove {
        use ruletest::lint::prove;
        let sdb = Arc::new(prove::symbolic_database());
        let sopt = match fault {
            Some(f) => buggy_optimizer(sdb, f),
            None => Optimizer::new(sdb),
        };
        let preport =
            prove::prove_rules(&sopt, &Telemetry::disabled()).map_err(|e| e.to_string())?;
        print!("{}", preport.render_text());
        preport.inequivalent
    } else {
        0
    };
    match fault {
        Some(f) => {
            let caught =
                report.flagged_rules().iter().any(|r| r == f.rule_name()) || prove_failures > 0;
            if caught {
                println!("lint: fault {} caught statically", f.name());
                Ok(())
            } else {
                Err(format!("fault {} NOT caught by the static audit", f.name()))
            }
        }
        None if report.is_clean() && prove_failures == 0 => Ok(()),
        None if !report.is_clean() => Err(format!(
            "{} lint violation(s) in the rule catalog",
            report.violations.len()
        )),
        None => Err(format!(
            "{prove_failures} rule(s) proved inequivalent by the symbolic prover"
        )),
    }
}

/// Runs the symbolic equivalence prover (`ruletest prove`): every
/// exploration rule's pattern is instantiated over symbolic relations,
/// its action applied, and both sides compared algebraically — no rows,
/// no execution. Without `--fault` the command fails when any rule is
/// proved inequivalent; with `--fault MUTANT` the named mutant is
/// injected and the command fails unless its rule is proved
/// inequivalent statically.
fn run_prove(opts: &Opts) -> Result<(), String> {
    use ruletest::core::mutate::{mutant_optimizer, Mutant};
    use ruletest::lint::prove::{self, ProveVerdict};
    let telemetry = if opts.metrics_json.is_some() || opts.profile_folded.is_some() {
        Telemetry::metrics_only()
    } else {
        Telemetry::disabled()
    };
    let mutant = match &opts.fault {
        Some(id) => Some(Mutant::by_id(id).map_err(|e| e.to_string())?),
        None => None,
    };
    // Proofs run over the rowless symbolic database, never TPC-H.
    let db = Arc::new(prove::symbolic_database());
    let optimizer = match mutant {
        Some(m) => mutant_optimizer(db, m),
        None => Optimizer::new(db),
    };
    let started = Instant::now();
    let report = match (mutant, &opts.rule) {
        (Some(m), _) => prove::prove_rules_focused(&optimizer, m.rule_name, &telemetry),
        (None, Some(rule)) => prove::prove_rules_focused(&optimizer, rule, &telemetry),
        (None, None) => prove::prove_rules(&optimizer, &telemetry),
    }
    .map_err(|e| e.to_string())?;
    print!("{}", report.render_text());
    println!("prove: finished in {:?}", started.elapsed());
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("prove: report written to {path}");
    }
    let rule_names: Vec<String> = (0..optimizer.num_rules())
        .map(|i| {
            optimizer
                .rule(ruletest::common::RuleId(i as u16))
                .name
                .to_string()
        })
        .collect();
    if let Some(path) = &opts.metrics_json {
        let mut run = telemetry.run_report(&rule_names);
        run.wall_seconds = started.elapsed().as_secs_f64();
        std::fs::write(path, run.to_json().to_string_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote run report to {path}");
    }
    if let Some(path) = &opts.profile_folded {
        let section = telemetry.profile_section(&rule_names);
        std::fs::write(path, section.folded()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} folded stack(s) to {path}", section.spans.len());
    }
    match mutant {
        Some(m) => match report.verdict_of(m.rule_name) {
            Some(ProveVerdict::Inequivalent) => {
                println!("prove: mutant {} proved inequivalent statically", m.id);
                Ok(())
            }
            verdict => Err(format!(
                "mutant {} NOT proved inequivalent (verdict: {})",
                m.id,
                verdict.map_or("absent", |v| v.name())
            )),
        },
        None if report.has_inequivalent() => Err(format!(
            "{} rule(s) proved inequivalent",
            report.inequivalent
        )),
        None => Ok(()),
    }
}

/// `ruletest triage [--fault F] [--out P] [--scale N]` — runs a campaign
/// (over a fault-injected optimizer when `--fault` is given), then
/// minimizes, deduplicates, and bundles every finding.
///
/// Unlike `audit`, finding bugs here is *success*: the command's job is
/// producing repro bundles, and it fails only when a requested fault
/// injection yields nothing to triage.
/// Runs the rule-mutation campaign (`ruletest mutate`): derives buggy
/// variants of real catalog rules, runs the static linter *and* the §2.3
/// generation → differential-execution pipeline against each, and fails
/// unless every mutant meets its expected verdict — expected-detectable
/// mutants must be killed, benign (cost-only) mutants must *not* be
/// reported as bugs.
fn run_mutate(opts: &Opts) -> Result<(), String> {
    use ruletest::core::mutate::{BugClass, Mutant, MutationConfig};
    if opts.list {
        println!("{:<38} {:<24} {:<28} expected", "mutant", "class", "rule");
        for m in Mutant::all() {
            println!(
                "{:<38} {:<24} {:<28} {}",
                m.id,
                m.class.name(),
                m.rule_name,
                m.expected.name()
            );
        }
        return Ok(());
    }
    let class = match &opts.class {
        Some(name) => Some(BugClass::from_name(name).map_err(|e| e.to_string())?),
        None => None,
    };
    let telemetry = if opts.metrics_json.is_some() || opts.profile_folded.is_some() {
        Telemetry::metrics_only()
    } else {
        Telemetry::disabled()
    };
    // Data scale: the differential oracle wants the default corpus the
    // detection budgets were tuned against.
    let db = Arc::new(tpch_database(&TpchConfig::default()).map_err(|e| e.to_string())?);
    let cfg = MutationConfig {
        class,
        sample: opts.sample,
        threads: opts.threads,
        ..Default::default()
    };
    let started = Instant::now();
    let report = ruletest::core::mutate::run_mutation_campaign(&db, &cfg, &telemetry)
        .map_err(|e| e.to_string())?;
    print!("{}", report.render_text());
    println!("mutate: finished in {:?}", started.elapsed());
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("mutate: report written to {path}");
    }
    if let Some(path) = &opts.metrics_json {
        let mut run = telemetry.run_report(&[]);
        run.wall_seconds = started.elapsed().as_secs_f64();
        std::fs::write(path, run.to_json().to_string_pretty())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote run report to {path}");
    }
    if let Some(path) = &opts.profile_folded {
        let section = telemetry.profile_section(&[]);
        std::fs::write(path, section.folded()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} folded stack(s) to {path}", section.spans.len());
    }
    if report.failed() {
        Err(format!(
            "{} mutants violated their expected verdict",
            report.failures().len()
        ))
    } else {
        Ok(())
    }
}

fn run_triage(opts: &Opts) -> Result<(), String> {
    if opts.positional.first().map(String::as_str) == Some("replay") {
        return run_triage_replay(opts);
    }
    let started = Instant::now();
    let mut parallelism = ruletest::common::Parallelism::default();
    if opts.threads > 0 {
        parallelism.threads = opts.threads;
    }
    parallelism.seed = opts.seed;
    let telemetry = if opts.trace_out.is_some() {
        Telemetry::enabled()
    } else if opts.metrics_json.is_some() || opts.profile_folded.is_some() {
        Telemetry::metrics_only()
    } else {
        Telemetry::disabled()
    };
    let fault = match &opts.fault {
        Some(name) => Some(Fault::from_name(name).map_err(|e| e.to_string())?),
        None => None,
    };
    let scale = opts.scale.max(1);
    let db_cfg = TpchConfig::scaled(TpchConfig::default().seed, scale);
    let db = Arc::new(tpch_database(&db_cfg).map_err(|e| e.to_string())?);
    let optimizer = Arc::new(match fault {
        Some(f) => buggy_optimizer(db.clone(), f),
        None => Optimizer::new(db.clone()),
    });
    let fw = Framework::with_optimizer(optimizer)
        .with_db_profile(DbProfile {
            db_seed: db_cfg.seed,
            scale,
        })
        .with_parallelism(parallelism)
        .with_telemetry(telemetry);
    // Fault mode targets the one replaced rule; clean mode audits broadly.
    let (targets, pad) = match fault {
        Some(f) => {
            let rid = fw
                .optimizer
                .rule_id(f.rule_name())
                .ok_or_else(|| format!("fault rule '{}' not in catalog", f.rule_name()))?;
            (vec![RuleTarget::Single(rid)], opts.pad.max(1))
        }
        None => (singleton_targets(&fw, opts.rules), opts.pad.max(2)),
    };
    // Detection is seed-sensitive; fall back through a fixed seed ladder
    // until the campaign surfaces a finding (fault mode only — a clean
    // optimizer legitimately finds nothing).
    let mut seeds = vec![opts.seed];
    if fault.is_some() {
        seeds.extend(
            [3u64, 11, 19, 27, 40, 55, 63, 71]
                .iter()
                .filter(|s| **s != opts.seed),
        );
    }
    let mut found = None;
    for seed in seeds {
        let gen_cfg = GenConfig {
            seed,
            pad_ops: pad,
            max_trials: opts.trials,
            ..Default::default()
        };
        let Ok(suite) = generate_suite(&fw, targets.clone(), opts.k, Strategy::Pattern, &gen_cfg)
        else {
            continue;
        };
        let graph = build_graph(&fw, &suite).map_err(|e| e.to_string())?;
        let inst = Instance::from_graph(&graph);
        let sol = topk(&inst).map_err(|e| e.to_string())?;
        let report = execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default())
            .map_err(|e| e.to_string())?;
        let done = !report.bugs.is_empty() || fault.is_none();
        if done {
            found = Some((seed, suite, report));
            break;
        }
    }
    let Some((seed, suite, report)) = found else {
        return Err("fault injection produced no detectable bug on any seed".to_string());
    };
    println!(
        "campaign (seed {seed}): {} validations, {} raw findings",
        report.validations,
        report.bugs.len()
    );
    let cfg = TriageConfig {
        fault,
        ..TriageConfig::default()
    };
    let triaged = triage_report(&fw, &suite, &report, &cfg).map_err(|e| e.to_string())?;
    println!(
        "triage: {} raw -> {} deduplicated signature(s), {} duplicate(s) collapsed, {} shrink steps",
        triaged.raw_bugs,
        triaged.bugs.len(),
        triaged.duplicates_collapsed,
        triaged.steps_total
    );
    for bug in &triaged.bugs {
        println!(
            "SIGNATURE {}\n  seed={} scale={} rule_mask=[{}] ops={} duplicates={}{}\n  {}\n  {}",
            bug.signature.key(),
            bug.report.seed,
            bug.scale,
            bug.report.rule_mask.join("+"),
            bug.ops,
            bug.duplicates,
            if bug.certified { " (1-minimal)" } else { "" },
            bug.minimized_sql,
            bug.diff_summary
        );
        if bug.raw_signature != bug.signature {
            println!("  raw signature was: {}", bug.raw_signature.key());
        }
    }
    if let Some(path) = &opts.out {
        let bundles = to_bundles(&fw, &triaged, &cfg).map_err(|e| e.to_string())?;
        let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        write_bundles(&mut w, &bundles).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {} repro bundle(s) to {path}", bundles.len());
    }
    let stats = fw.optimizer.cache_stats();
    println!(
        "optimizer invocation cache: {} hits / {} lookups",
        stats.hits,
        stats.hits + stats.misses
    );
    write_telemetry_outputs(&fw, opts, started)?;
    if fault.is_some() && triaged.bugs.is_empty() {
        return Err("fault injection produced no triaged bug".to_string());
    }
    Ok(())
}

/// `ruletest triage replay <bugs.jsonl> [--check]` — re-executes every
/// bundle from scratch in this (fresh) process.
fn run_triage_replay(opts: &Opts) -> Result<(), String> {
    let path = opts
        .positional
        .get(1)
        .ok_or_else(|| "usage: ruletest triage replay <bugs.jsonl> [--check]".to_string())?;
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let bundles =
        read_bundles(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    if bundles.is_empty() {
        return Err(format!("{path}: no bundles to replay"));
    }
    let mut unconfirmed = 0usize;
    for (i, bundle) in bundles.iter().enumerate() {
        let outcome = replay(bundle).map_err(|e| format!("bundle {}: {e}", i + 1))?;
        let status = if outcome.confirmed {
            "CONFIRMED"
        } else if outcome.diverged {
            "DIVERGED (diff mismatch)"
        } else {
            "NOT REPRODUCED"
        };
        println!(
            "bundle {}: {} [{}] {}",
            i + 1,
            bundle.signature,
            status,
            bundle.sql
        );
        if !outcome.confirmed {
            unconfirmed += 1;
            println!("  recorded: {}", bundle.diff_summary);
            println!("  replayed: {}", outcome.diff_summary);
        }
    }
    println!(
        "replayed {} bundle(s): {} confirmed, {} unconfirmed",
        bundles.len(),
        bundles.len() - unconfirmed,
        unconfirmed
    );
    if opts.check && unconfirmed > 0 {
        return Err(format!("{unconfirmed} bundle(s) failed to confirm"));
    }
    Ok(())
}
