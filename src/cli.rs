//! Argument parsing for the `ruletest` binary, split out so it can be
//! unit-tested.
//!
//! Parsing is strict: unknown `--flags` are errors, and every flag that
//! takes a value fails loudly when the value is missing or unparseable
//! (historically `--threads` with no value silently became 0, i.e. "one
//! worker per core").

use std::str::FromStr;

/// Parsed command-line options (everything after the subcommand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opts {
    pub seed: u64,
    pub pad: usize,
    pub trials: usize,
    pub random: bool,
    pub rules: usize,
    pub k: usize,
    /// 0 (the default) means "one worker per core".
    pub threads: usize,
    /// Write the aggregate `RunReport` JSON here after the command runs
    /// (enables telemetry).
    pub metrics_json: Option<String>,
    /// Write the JSONL event trace here after the command runs (enables
    /// telemetry with tracing).
    pub trace_out: Option<String>,
    /// `ruletest report --check`: fail on dead instrumentation.
    /// `ruletest triage replay --check`: fail unless every bundle confirms.
    pub check: bool,
    /// `ruletest triage --fault NAME`: inject the named fault.
    pub fault: Option<String>,
    /// Write JSONL repro bundles here (`ruletest triage --out PATH`).
    pub out: Option<String>,
    /// Write a machine-readable report here (`ruletest lint --json PATH`).
    pub json: Option<String>,
    /// Test-database scale factor (1 = default table sizes).
    pub scale: usize,
    /// `ruletest mutate --class C`: restrict to one bug class.
    pub class: Option<String>,
    /// `ruletest mutate --sample N`: stratified sample, ≤N mutants per
    /// class.
    pub sample: Option<usize>,
    /// `ruletest mutate --list`: print the mutant catalog and exit.
    pub list: bool,
    /// Write the profile section as collapsed/folded stacks here
    /// (`path self_us` per line; enables telemetry on live commands).
    pub profile_folded: Option<String>,
    /// `ruletest diff --threshold-pct N`: allowed relative drift for
    /// timing/cache comparisons, in whole percent (default 10).
    pub threshold_pct: Option<u32>,
    /// `ruletest audit --cache-dir DIR`: persist the invocation cache and
    /// stage checkpoints under DIR; a later run warm-starts from them.
    pub cache_dir: Option<String>,
    /// `ruletest audit --cache-dir DIR --resume`: resume an interrupted
    /// campaign from its last completed stage checkpoint.
    pub resume: bool,
    /// `ruletest prove --rule NAME`: prove only the named rule.
    pub rule: Option<String>,
    /// `ruletest lint --prove`: run the symbolic prover alongside the
    /// concrete lint passes.
    pub prove: bool,
    /// `ruletest audit --no-supervise`: disable the invocation sandbox
    /// and crash quarantine (supervision is on by default for `audit`).
    pub no_supervise: bool,
    /// `ruletest audit --chaos-seed N`: install a seeded chaos-injection
    /// plan before the campaign runs.
    pub chaos_seed: Option<u64>,
    /// `ruletest audit --chaos-plan SPEC`: install an explicit chaos
    /// plan (`site:kind@every[#times],...`); overrides `--chaos-seed`.
    pub chaos_plan: Option<String>,
    /// `ruletest audit --deadline-ms N`: cooperative per-execution
    /// deadline for executor batch loops (0 = unarmed).
    pub deadline_ms: u64,
    pub positional: Vec<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            seed: 42,
            pad: 0,
            trials: 500,
            random: false,
            rules: 8,
            k: 3,
            threads: 0,
            metrics_json: None,
            trace_out: None,
            check: false,
            fault: None,
            out: None,
            json: None,
            scale: 1,
            class: None,
            sample: None,
            list: false,
            profile_folded: None,
            threshold_pct: None,
            cache_dir: None,
            resume: false,
            rule: None,
            prove: false,
            no_supervise: false,
            chaos_seed: None,
            chaos_plan: None,
            deadline_ms: 0,
            positional: Vec::new(),
        }
    }
}

fn value_of(flag: &str, args: &mut impl Iterator<Item = String>) -> Result<String, String> {
    match args.next() {
        // A following flag almost certainly means the value was forgotten.
        Some(v) if !v.starts_with("--") => Ok(v),
        Some(v) => Err(format!("{flag} requires a value, got flag '{v}'")),
        None => Err(format!("{flag} requires a value")),
    }
}

fn parse_value<T: FromStr>(
    flag: &str,
    args: &mut impl Iterator<Item = String>,
) -> Result<T, String> {
    let v = value_of(flag, args)?;
    v.parse().map_err(|_| format!("{flag}: cannot parse '{v}'"))
}

/// Parses `(subcommand, options)` from the arguments after the program
/// name. No arguments at all resolves to the `help` subcommand.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<(String, Opts), String> {
    let mut args = args.into_iter();
    let cmd = args.next().unwrap_or_else(|| "help".to_string());
    let mut opts = Opts::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => opts.seed = parse_value(&a, &mut args)?,
            "--pad" => opts.pad = parse_value(&a, &mut args)?,
            "--trials" => opts.trials = parse_value(&a, &mut args)?,
            "--rules" => opts.rules = parse_value(&a, &mut args)?,
            "--k" => opts.k = parse_value(&a, &mut args)?,
            "--threads" => opts.threads = parse_value(&a, &mut args)?,
            "--metrics-json" => opts.metrics_json = Some(value_of(&a, &mut args)?),
            "--trace-out" => opts.trace_out = Some(value_of(&a, &mut args)?),
            "--fault" => opts.fault = Some(value_of(&a, &mut args)?),
            "--out" => opts.out = Some(value_of(&a, &mut args)?),
            "--json" => opts.json = Some(value_of(&a, &mut args)?),
            "--scale" => opts.scale = parse_value(&a, &mut args)?,
            "--class" => opts.class = Some(value_of(&a, &mut args)?),
            "--sample" => opts.sample = Some(parse_value(&a, &mut args)?),
            "--profile-folded" => opts.profile_folded = Some(value_of(&a, &mut args)?),
            "--threshold-pct" => opts.threshold_pct = Some(parse_value(&a, &mut args)?),
            "--cache-dir" => opts.cache_dir = Some(value_of(&a, &mut args)?),
            "--rule" => opts.rule = Some(value_of(&a, &mut args)?),
            "--chaos-seed" => opts.chaos_seed = Some(parse_value(&a, &mut args)?),
            "--chaos-plan" => opts.chaos_plan = Some(value_of(&a, &mut args)?),
            "--deadline-ms" => opts.deadline_ms = parse_value(&a, &mut args)?,
            "--no-supervise" => opts.no_supervise = true,
            "--random" => opts.random = true,
            "--check" => opts.check = true,
            "--list" => opts.list = true,
            "--resume" => opts.resume = true,
            "--prove" => opts.prove = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => opts.positional.push(other.to_string()),
        }
    }
    Ok((cmd, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_positionals() {
        let (cmd, opts) = parse(argv(&["gen", "InnerJoinCommute"])).unwrap();
        assert_eq!(cmd, "gen");
        assert_eq!(opts.positional, vec!["InnerJoinCommute"]);
        assert_eq!(
            opts,
            Opts {
                positional: vec!["InnerJoinCommute".to_string()],
                ..Opts::default()
            }
        );
    }

    #[test]
    fn no_arguments_means_help() {
        let (cmd, _) = parse(argv(&[])).unwrap();
        assert_eq!(cmd, "help");
    }

    #[test]
    fn flags_parse_and_mix_with_positionals() {
        let (cmd, opts) = parse(argv(&[
            "audit",
            "--rules",
            "12",
            "--k",
            "4",
            "--threads",
            "3",
            "--seed",
            "7",
            "--random",
            "--metrics-json",
            "out.json",
            "--trace-out",
            "trace.jsonl",
        ]))
        .unwrap();
        assert_eq!(cmd, "audit");
        assert_eq!((opts.rules, opts.k, opts.threads, opts.seed), (12, 4, 3, 7));
        assert!(opts.random);
        assert_eq!(opts.metrics_json.as_deref(), Some("out.json"));
        assert_eq!(opts.trace_out.as_deref(), Some("trace.jsonl"));
    }

    #[test]
    fn missing_value_is_an_error_not_a_silent_default() {
        // Regression: `--threads` with no value used to become 0.
        let err = parse(argv(&["audit", "--threads"])).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let err = parse(argv(&["audit", "--threads", "--seed", "1"])).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn unparseable_value_is_an_error() {
        let err = parse(argv(&["audit", "--threads", "many"])).unwrap_err();
        assert!(err.contains("many"), "{err}");
        let err = parse(argv(&["gen", "--seed", "-3"])).unwrap_err();
        assert!(err.contains("-3"), "{err}");
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse(argv(&["audit", "--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn triage_flags_parse() {
        let (cmd, opts) = parse(argv(&[
            "triage",
            "--fault",
            "SelectMergedIntoOuterJoin",
            "--out",
            "bugs.jsonl",
            "--scale",
            "2",
        ]))
        .unwrap();
        assert_eq!(cmd, "triage");
        assert_eq!(opts.fault.as_deref(), Some("SelectMergedIntoOuterJoin"));
        assert_eq!(opts.out.as_deref(), Some("bugs.jsonl"));
        assert_eq!(opts.scale, 2);
        // replay form: positional file + --check
        let (cmd, opts) = parse(argv(&["triage", "replay", "bugs.jsonl", "--check"])).unwrap();
        assert_eq!(cmd, "triage");
        assert_eq!(opts.positional, vec!["replay", "bugs.jsonl"]);
        assert!(opts.check);
        // missing values fail loudly
        assert!(parse(argv(&["triage", "--fault"])).is_err());
        assert!(parse(argv(&["triage", "--scale", "x"])).is_err());
    }

    #[test]
    fn lint_flags_parse() {
        let (cmd, opts) = parse(argv(&[
            "lint",
            "--fault",
            "OuterJoinSimplifyUnconditional",
            "--json",
            "lint.json",
        ]))
        .unwrap();
        assert_eq!(cmd, "lint");
        assert_eq!(
            opts.fault.as_deref(),
            Some("OuterJoinSimplifyUnconditional")
        );
        assert_eq!(opts.json.as_deref(), Some("lint.json"));
        assert!(parse(argv(&["lint", "--json"])).is_err());
    }

    #[test]
    fn mutate_flags_parse() {
        let (cmd, opts) = parse(argv(&[
            "mutate",
            "--class",
            "boundary-bug",
            "--sample",
            "2",
            "--json",
            "MUTATION_REPORT.json",
        ]))
        .unwrap();
        assert_eq!(cmd, "mutate");
        assert_eq!(opts.class.as_deref(), Some("boundary-bug"));
        assert_eq!(opts.sample, Some(2));
        assert_eq!(opts.json.as_deref(), Some("MUTATION_REPORT.json"));
        let (_, opts) = parse(argv(&["mutate", "--list"])).unwrap();
        assert!(opts.list);
        // missing/unparseable values fail loudly
        assert!(parse(argv(&["mutate", "--class"])).is_err());
        assert!(parse(argv(&["mutate", "--sample", "few"])).is_err());
    }

    #[test]
    fn diff_and_profile_flags_parse() {
        let (cmd, opts) = parse(argv(&[
            "diff",
            "base.json",
            "cur.json",
            "--threshold-pct",
            "25",
            "--json",
            "diff.json",
        ]))
        .unwrap();
        assert_eq!(cmd, "diff");
        assert_eq!(opts.positional, vec!["base.json", "cur.json"]);
        assert_eq!(opts.threshold_pct, Some(25));
        assert_eq!(opts.json.as_deref(), Some("diff.json"));
        let (_, opts) = parse(argv(&["audit", "--profile-folded", "out.folded"])).unwrap();
        assert_eq!(opts.profile_folded.as_deref(), Some("out.folded"));
        // missing/unparseable values fail loudly
        assert!(parse(argv(&["diff", "--threshold-pct"])).is_err());
        assert!(parse(argv(&["diff", "--threshold-pct", "lots"])).is_err());
        assert!(parse(argv(&["audit", "--profile-folded"])).is_err());
    }

    #[test]
    fn cache_dir_and_resume_flags_parse() {
        let (cmd, opts) = parse(argv(&[
            "audit",
            "--cache-dir",
            ".ruletest-cache",
            "--resume",
        ]))
        .unwrap();
        assert_eq!(cmd, "audit");
        assert_eq!(opts.cache_dir.as_deref(), Some(".ruletest-cache"));
        assert!(opts.resume);
        // --resume without --cache-dir parses (the command decides whether
        // that combination is meaningful); a missing value fails loudly.
        let (_, opts) = parse(argv(&["audit", "--resume"])).unwrap();
        assert!(opts.resume && opts.cache_dir.is_none());
        assert!(parse(argv(&["audit", "--cache-dir"])).is_err());
        assert!(parse(argv(&["audit", "--cache-dir", "--resume"])).is_err());
    }

    #[test]
    fn prove_flags_parse() {
        let (cmd, opts) = parse(argv(&[
            "prove",
            "--rule",
            "TopTopCollapse",
            "--json",
            "prove.json",
        ]))
        .unwrap();
        assert_eq!(cmd, "prove");
        assert_eq!(opts.rule.as_deref(), Some("TopTopCollapse"));
        assert_eq!(opts.json.as_deref(), Some("prove.json"));
        // lint grows a --prove switch; --fault reuses the triage flag.
        let (cmd, opts) = parse(argv(&["lint", "--prove"])).unwrap();
        assert_eq!(cmd, "lint");
        assert!(opts.prove);
        let (_, opts) = parse(argv(&["prove", "--fault", "TopTopCollapseTakesMax"])).unwrap();
        assert_eq!(opts.fault.as_deref(), Some("TopTopCollapseTakesMax"));
        // missing values fail loudly
        assert!(parse(argv(&["prove", "--rule"])).is_err());
        assert!(parse(argv(&["prove", "--rule", "--json"])).is_err());
    }

    #[test]
    fn supervision_and_chaos_flags_parse() {
        let (cmd, opts) = parse(argv(&[
            "audit",
            "--chaos-seed",
            "99",
            "--deadline-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(cmd, "audit");
        assert_eq!(opts.chaos_seed, Some(99));
        assert_eq!(opts.deadline_ms, 250);
        assert!(!opts.no_supervise);
        let (_, opts) = parse(argv(&[
            "audit",
            "--chaos-plan",
            "memo.insert:panic@3#1,exec.batch:stall@5",
            "--no-supervise",
        ]))
        .unwrap();
        assert_eq!(
            opts.chaos_plan.as_deref(),
            Some("memo.insert:panic@3#1,exec.batch:stall@5")
        );
        assert!(opts.no_supervise);
        // missing/unparseable values fail loudly
        assert!(parse(argv(&["audit", "--chaos-seed"])).is_err());
        assert!(parse(argv(&["audit", "--chaos-seed", "entropy"])).is_err());
        assert!(parse(argv(&["audit", "--chaos-plan"])).is_err());
        assert!(parse(argv(&["audit", "--deadline-ms", "soon"])).is_err());
    }

    #[test]
    fn check_flag_for_report() {
        let (cmd, opts) = parse(argv(&["report", "out.json", "--check"])).unwrap();
        assert_eq!(cmd, "report");
        assert!(opts.check);
        assert_eq!(opts.positional, vec!["out.json"]);
    }
}
