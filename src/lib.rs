//! # ruletest — A Framework for Testing Query Transformation Rules
//!
//! A complete, from-scratch reproduction of *"A Framework for Testing
//! Query Transformation Rules"* (Elmongui, Narasayya, Ramamurthy —
//! SIGMOD 2009), including every substrate the paper's framework runs on:
//!
//! * [`storage`] — a TPC-H-shaped test database with keys, foreign keys,
//!   nullable columns, deterministic data generation, and statistics;
//! * [`expr`] / [`logical`] — scalar expressions with three-valued logic
//!   and logical query trees;
//! * [`optimizer`] — a Cascades-style transformation-rule optimizer (40
//!   exploration rules, 14 implementation rules) with the three testing
//!   extensions the paper requires: rule tracing (`RuleSet(q)`), rule
//!   masking (`Plan(q, ¬R)`), and rule-pattern export (§3.1's XML API);
//! * [`executor`] — a physical-plan interpreter for correctness
//!   validation;
//! * [`sql`] — the Generate SQL module plus a parser back to logical
//!   trees;
//! * [`core`] — the paper's contribution: pattern-based query generation
//!   (§3), test suite compression (§4–5: BASELINE / SetMultiCover /
//!   TopKIndependent / exact / bipartite matching), monotonicity-pruned
//!   bipartite-graph construction (§5.3.1), correctness execution (§2.3),
//!   fault injection, and the rule-mutation engine (`ruletest mutate`):
//!   buggy rule variants across six bug classes measuring the
//!   framework's fault-detection power;
//! * [`telemetry`] — std-only campaign metrics, structured event tracing,
//!   and JSON run reports (surfaced via `ruletest report` and the
//!   `--metrics-json` / `--trace-out` flags);
//! * [`lint`] — the static plan auditor and rule linter (`ruletest
//!   lint`): per-rule substitute audits over pattern-instantiated
//!   corpora, catching schema, row-provenance, and duplicate-sensitivity
//!   rule bugs before any query executes.
//!
//! ## Quickstart
//!
//! ```
//! use ruletest::core::{Framework, FrameworkConfig, GenConfig, Strategy};
//!
//! let fw = Framework::new(&FrameworkConfig::default()).unwrap();
//! let rule = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
//!
//! // §3.1: a SQL query guaranteed to have exercised the rule.
//! let out = fw
//!     .find_query_for_rule(rule, Strategy::Pattern, &GenConfig::default())
//!     .unwrap();
//! assert!(out.trials <= 4);
//! println!("{}", out.sql);
//! ```

pub mod cli;

pub use ruletest_common as common;
pub use ruletest_core as core;
pub use ruletest_executor as executor;
pub use ruletest_expr as expr;
pub use ruletest_lint as lint;
pub use ruletest_logical as logical;
pub use ruletest_optimizer as optimizer;
pub use ruletest_sql as sql;
pub use ruletest_storage as storage;
pub use ruletest_telemetry as telemetry;
